//! Post-run trace analysis: per-stage aggregates, conversion to the
//! simulator's [`Timeline`] for ASCII/SVG rendering, and validation of a
//! measured run against planner-predicted stage times and simulated
//! steady-state throughput (the feedback loop the paper closes by
//! profiling before partitioning, §3.1).

use crate::event::SpanKind;
use crate::metrics::MetricsRegistry;
use crate::recorder::TraceSnapshot;
use pipedream_sim::{Timeline, WorkKind};
use serde::{Deserialize, Serialize};

/// Aggregated busy time for one pipeline stage, summed over its replica
/// tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimes {
    /// Pipeline stage index.
    pub stage: usize,
    /// Number of tracks (replicas) contributing.
    pub tracks: usize,
    /// Total forward span time (includes nested receive waits).
    pub fwd_s: f64,
    /// Total backward span time (includes nested receive waits).
    pub bwd_s: f64,
    /// Total gradient-sync rendezvous time.
    pub sync_s: f64,
    /// Total time blocked on upstream/downstream receives (nested inside
    /// forward/backward spans).
    pub recv_wait_s: f64,
    /// Total checkpoint write time.
    pub checkpoint_s: f64,
    /// Backward passes completed (minibatches finished by this stage).
    pub minibatches: u64,
    /// Fraction of wall time this stage spent computing, averaged over
    /// its replicas.
    pub busy_frac: f64,
    /// Fraction of wall time spent blocked on communication — send/receive
    /// waits plus the gradient-sync rendezvous — averaged over replicas.
    pub comm_frac: f64,
    /// Pipeline bubble: `1 - busy_frac - comm_frac`, idle time that is
    /// neither compute nor communication.
    pub bubble_frac: f64,
}

impl StageTimes {
    /// Pure compute: forward + backward with the nested receive waits
    /// subtracted back out.
    pub fn compute_s(&self) -> f64 {
        (self.fwd_s + self.bwd_s - self.recv_wait_s).max(0.0)
    }

    /// Mean per-minibatch compute time (0 when no backward completed).
    pub fn compute_per_minibatch_s(&self) -> f64 {
        if self.minibatches == 0 {
            0.0
        } else {
            self.compute_s() / self.minibatches as f64
        }
    }
}

/// Sum span durations per stage across a snapshot's stage tracks.
/// Tracks without a stage (supervisor, coordinator) are ignored.
pub fn stage_times(snap: &TraceSnapshot) -> Vec<StageTimes> {
    let n_stages = snap
        .tracks
        .iter()
        .filter_map(|t| t.stage)
        .max()
        .map(|s| s + 1)
        .unwrap_or(0);
    let mut out: Vec<StageTimes> = (0..n_stages)
        .map(|stage| StageTimes {
            stage,
            ..StageTimes::default()
        })
        .collect();
    let wall = snap.span_s();
    for track in &snap.tracks {
        let Some(stage) = track.stage else { continue };
        let st = &mut out[stage];
        st.tracks += 1;
        for ev in &track.events {
            let d = ev.duration_s();
            match ev.kind {
                SpanKind::Fwd { .. } => st.fwd_s += d,
                SpanKind::Bwd { .. } => {
                    st.bwd_s += d;
                    st.minibatches += 1;
                }
                SpanKind::GradSync => st.sync_s += d,
                SpanKind::RecvWait { .. } | SpanKind::SendWait { .. } => st.recv_wait_s += d,
                SpanKind::Checkpoint => st.checkpoint_s += d,
                _ => {}
            }
        }
    }
    for st in &mut out {
        if wall > 0.0 && st.tracks > 0 {
            let denom = wall * st.tracks as f64;
            st.busy_frac = (st.compute_s() / denom).min(1.0);
            // Communication is capped by what busy left over, so the
            // three fractions always sum to exactly 1.
            st.comm_frac = ((st.recv_wait_s + st.sync_s) / denom).min(1.0 - st.busy_frac);
            st.bubble_frac = 1.0 - st.busy_frac - st.comm_frac;
        }
    }
    out
}

/// Convert a measured snapshot into the simulator's [`Timeline`] so the
/// same `render_timeline` / `render_svg` code draws real runs. One lane
/// per track; stash/receive bookkeeping and instant events are omitted
/// (they nest inside or annotate the compute spans).
pub fn to_timeline(snap: &TraceSnapshot) -> Timeline {
    let mut tl = Timeline::new(snap.tracks.len());
    for (w, track) in snap.tracks.iter().enumerate() {
        for ev in &track.events {
            if ev.is_instant() {
                continue;
            }
            let kind = match ev.kind {
                SpanKind::Fwd { mb } => WorkKind::Forward(mb),
                SpanKind::Bwd { mb } => WorkKind::Backward(mb),
                SpanKind::GradSync => WorkKind::Sync,
                SpanKind::Checkpoint => WorkKind::Checkpoint,
                SpanKind::Stalled => WorkKind::Stall,
                _ => continue,
            };
            tl.record(w, ev.start_ns as f64 * 1e-9, ev.end_ns as f64 * 1e-9, kind);
        }
    }
    tl
}

/// Measured-vs-predicted comparison for one pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageValidation {
    /// Pipeline stage index.
    pub stage: usize,
    /// Measured per-minibatch compute time (receive waits excluded).
    pub measured_s: f64,
    /// Planner-predicted per-minibatch stage time.
    pub predicted_s: f64,
    /// `measured / predicted - 1`; positive means slower than planned.
    pub error_frac: f64,
}

/// Outcome of diffing a measured run against the planner's per-stage
/// predictions and the simulator's steady-state throughput.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceValidation {
    /// Per-stage measured vs predicted compute time.
    pub per_stage: Vec<StageValidation>,
    /// Measured steady-state seconds per minibatch (slope of the middle
    /// half of stage-0 backward completions).
    pub measured_per_minibatch_s: f64,
    /// Simulated steady-state seconds per minibatch.
    pub simulated_per_minibatch_s: f64,
    /// `measured / simulated - 1` for per-minibatch time; positive means
    /// the real pipeline is slower than the simulation.
    pub throughput_error_frac: f64,
    /// Measured samples/second at the given minibatch size.
    pub measured_samples_per_sec: f64,
    /// Simulated samples/second at the given minibatch size.
    pub simulated_samples_per_sec: f64,
}

/// Steady-state seconds per minibatch, measured as the slope of stage-0
/// backward completion times. The middle half of the completions is used
/// so warmup (pipeline fill) and drain don't skew the estimate.
pub fn measured_per_minibatch_s(snap: &TraceSnapshot) -> f64 {
    let mut ends: Vec<u64> = snap
        .tracks
        .iter()
        .filter(|t| t.stage == Some(0))
        .flat_map(|t| t.events.iter())
        .filter(|e| matches!(e.kind, SpanKind::Bwd { .. }))
        .map(|e| e.end_ns)
        .collect();
    ends.sort_unstable();
    let len = ends.len();
    if len < 2 {
        return 0.0;
    }
    let q = len / 4;
    let (lo, hi) = (q, len - 1 - q);
    if hi <= lo {
        return (ends[len - 1] - ends[0]) as f64 * 1e-9 / (len - 1) as f64;
    }
    (ends[hi] - ends[lo]) as f64 * 1e-9 / (hi - lo) as f64
}

/// Diff a measured snapshot against planner-predicted per-stage times and
/// the simulator's steady-state per-minibatch time. `minibatch_size` is
/// the number of samples per minibatch, used to express throughput in
/// samples/second.
pub fn validate(
    snap: &TraceSnapshot,
    predicted_stage_s: &[f64],
    simulated_per_minibatch_s: f64,
    minibatch_size: usize,
) -> TraceValidation {
    let per_stage = stage_times(snap)
        .iter()
        .map(|st| {
            let predicted = predicted_stage_s.get(st.stage).copied().unwrap_or(0.0);
            let measured = st.compute_per_minibatch_s();
            StageValidation {
                stage: st.stage,
                measured_s: measured,
                predicted_s: predicted,
                error_frac: if predicted > 0.0 {
                    measured / predicted - 1.0
                } else {
                    0.0
                },
            }
        })
        .collect();
    let measured_mb = measured_per_minibatch_s(snap);
    TraceValidation {
        per_stage,
        measured_per_minibatch_s: measured_mb,
        simulated_per_minibatch_s,
        throughput_error_frac: if simulated_per_minibatch_s > 0.0 {
            measured_mb / simulated_per_minibatch_s - 1.0
        } else {
            0.0
        },
        measured_samples_per_sec: if measured_mb > 0.0 {
            minibatch_size as f64 / measured_mb
        } else {
            0.0
        },
        simulated_samples_per_sec: if simulated_per_minibatch_s > 0.0 {
            minibatch_size as f64 / simulated_per_minibatch_s
        } else {
            0.0
        },
    }
}

/// Fold a snapshot into registry gauges/histograms: per-stage busy%,
/// comm% and bubble%, per-kind span duration histograms, and the total
/// events lost to the rings' drop-oldest policy.
///
/// Emits the labeled series only: `pipedream_stage_*{stage="N"}` gauges
/// and the `pipedream_span_seconds{kind="..."}` histogram family. The
/// pre-5.x flat names (`stage2_busy_frac`, `span_seconds_fwd`) were kept
/// behind a `flat_compat` shim for one release and are now gone.
pub fn record_snapshot_metrics(metrics: &MetricsRegistry, snap: &TraceSnapshot) {
    for st in stage_times(snap) {
        let stage = st.stage.to_string();
        let labels: [(&str, &str); 1] = [("stage", stage.as_str())];
        metrics
            .gauge_labeled("pipedream_stage_busy_frac", &labels)
            .set(st.busy_frac);
        metrics
            .gauge_labeled("pipedream_stage_comm_frac", &labels)
            .set(st.comm_frac);
        metrics
            .gauge_labeled("pipedream_stage_bubble_frac", &labels)
            .set(st.bubble_frac);
        metrics
            .gauge_labeled("pipedream_stage_sync_wait_seconds", &labels)
            .set(st.sync_s);
    }
    let mut dropped = 0;
    for track in &snap.tracks {
        dropped += track.dropped;
        for ev in &track.events {
            if !ev.is_instant() {
                metrics
                    .histogram_labeled("pipedream_span_seconds", &[("kind", ev.kind.name())])
                    .observe_secs(ev.duration_s());
            }
        }
    }
    metrics.counter("trace_events_dropped_total").add(dropped);
}

/// Record tensor buffer-pool activity for a run: how many scratch-buffer
/// requests were served from the free lists versus freshly allocated.
/// The runtime passes *deltas* over a training run, so in steady state a
/// healthy pipeline shows `tensor_pool_misses_total` flat while
/// `tensor_pool_hits_total` grows with minibatch count.
pub fn record_pool_metrics(metrics: &MetricsRegistry, hits: u64, misses: u64) {
    metrics.counter("tensor_pool_hits_total").add(hits);
    metrics.counter("tensor_pool_misses_total").add(misses);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::TrackEvents;

    const MS: u64 = 1_000_000;

    fn span(kind: SpanKind, start_ms: u64, end_ms: u64) -> Event {
        Event::span(kind, start_ms * MS, end_ms * MS)
    }

    /// Two stages, one track each: stage 0 does 4 fwd/bwd pairs with the
    /// backwards completing every 10 ms in steady state.
    fn sample() -> TraceSnapshot {
        let mut s0 = Vec::new();
        for mb in 0..4u64 {
            let t = mb * 10;
            s0.push(span(SpanKind::Fwd { mb }, t, t + 3));
            s0.push(span(SpanKind::RecvWait { mb }, t + 1, t + 2));
            s0.push(span(SpanKind::Bwd { mb }, t + 4, t + 8));
        }
        let s1 = vec![
            span(SpanKind::Fwd { mb: 0 }, 3, 6),
            span(SpanKind::Bwd { mb: 0 }, 6, 9),
            span(SpanKind::Checkpoint, 30, 34),
        ];
        TraceSnapshot {
            tracks: vec![
                TrackEvents {
                    name: "stage0.replica0".into(),
                    stage: Some(0),
                    events: s0,
                    dropped: 2,
                },
                TrackEvents {
                    name: "stage1.replica0".into(),
                    stage: Some(1),
                    events: s1,
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn stage_times_aggregate_and_subtract_waits() {
        let st = stage_times(&sample());
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].minibatches, 4);
        assert!((st[0].fwd_s - 4.0 * 3e-3).abs() < 1e-9);
        assert!((st[0].recv_wait_s - 4.0 * 1e-3).abs() < 1e-9);
        // compute = 4*(3+4) - 4*1 = 24 ms
        assert!((st[0].compute_s() - 24e-3).abs() < 1e-9);
        assert!((st[0].compute_per_minibatch_s() - 6e-3).abs() < 1e-9);
        assert!((st[1].checkpoint_s - 4e-3).abs() < 1e-9);
        assert!(st[0].busy_frac > 0.0 && st[0].busy_frac <= 1.0);
        // Communication (the 4 ms of receive waits over a 38 ms wall) is
        // its own fraction, not part of the bubble.
        assert!(
            (st[0].comm_frac - 4.0 / 38.0).abs() < 1e-9,
            "{}",
            st[0].comm_frac
        );
        for s in &st {
            assert!(
                (s.busy_frac + s.comm_frac + s.bubble_frac - 1.0).abs() < 1e-12,
                "stage {}: fractions must sum to 1",
                s.stage
            );
            assert!(s.bubble_frac >= 0.0 && s.comm_frac >= 0.0);
        }
    }

    #[test]
    fn timeline_conversion_maps_kinds_and_skips_bookkeeping() {
        let tl = to_timeline(&sample());
        assert_eq!(tl.per_worker.len(), 2);
        // RecvWait spans are skipped: 4 fwd + 4 bwd on stage 0.
        assert_eq!(tl.per_worker[0].len(), 8);
        assert!(tl.per_worker[1]
            .iter()
            .any(|i| i.kind == WorkKind::Checkpoint));
        assert!((tl.makespan() - 38e-3).abs() < 1e-9);
    }

    #[test]
    fn steady_state_slope_uses_middle_half() {
        // Backward completions at 8, 18, 28, 38 ms → slope 10 ms/mb.
        let mb = measured_per_minibatch_s(&sample());
        assert!((mb - 10e-3).abs() < 1e-9, "got {mb}");
    }

    #[test]
    fn validate_reports_per_stage_and_throughput_error() {
        let v = validate(&sample(), &[6e-3, 12e-3], 8e-3, 16);
        assert_eq!(v.per_stage.len(), 2);
        // Stage 0 measured exactly matches the prediction.
        assert!(v.per_stage[0].error_frac.abs() < 1e-9);
        // Stage 1 measured half the predicted 12 ms.
        assert!((v.per_stage[1].error_frac + 0.5).abs() < 1e-9);
        // 10 ms measured vs 8 ms simulated → +25%.
        assert!((v.throughput_error_frac - 0.25).abs() < 1e-9);
        assert!((v.measured_samples_per_sec - 16.0 / 10e-3).abs() < 1e-6);
    }

    #[test]
    fn pool_metrics_accumulate_as_counters() {
        let reg = MetricsRegistry::new();
        record_pool_metrics(&reg, 100, 7);
        record_pool_metrics(&reg, 50, 0);
        assert_eq!(reg.counter("tensor_pool_hits_total").get(), 150);
        assert_eq!(reg.counter("tensor_pool_misses_total").get(), 7);
    }

    #[test]
    fn snapshot_metrics_fold_into_registry() {
        let reg = MetricsRegistry::new();
        record_snapshot_metrics(&reg, &sample());
        assert_eq!(reg.counter("trace_events_dropped_total").get(), 2);
        let labels: [(&str, &str); 1] = [("stage", "0")];
        assert!(
            reg.gauge_labeled("pipedream_stage_busy_frac", &labels)
                .get()
                > 0.0
        );
        assert!(
            reg.gauge_labeled("pipedream_stage_comm_frac", &labels)
                .get()
                > 0.0
        );
        assert_eq!(
            reg.histogram_labeled("pipedream_span_seconds", &[("kind", "bwd")])
                .count(),
            5
        );
        let text = reg.render_prometheus();
        assert!(
            text.contains("pipedream_stage_bubble_frac{stage=\"0\"}"),
            "labeled stage gauges in the dump:\n{text}"
        );
    }

    #[test]
    fn snapshot_metrics_emit_labeled_series_only() {
        let reg = MetricsRegistry::new();
        record_snapshot_metrics(&reg, &sample());
        let text = reg.render_prometheus();
        assert!(
            !text.contains("stage0_busy_frac"),
            "flat names gone:\n{text}"
        );
        assert!(!text.contains("span_seconds_bwd"));
        assert!(text.contains("pipedream_stage_busy_frac{stage=\"0\"}"));
        assert!(text.contains("pipedream_span_seconds_bucket{kind=\"bwd\",le="));
    }
}
