//! Figure 1 / Figure 12 / Table 3 kernels: data-parallel iteration
//! simulation with wait-free backpropagation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipedream_hw::{Precision, ServerKind};
use pipedream_model::zoo;
use pipedream_sim::simulate_dp;

fn bench_fig1_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_dp_stall");
    for model in [zoo::vgg16(), zoo::resnet50(), zoo::awd_lm()] {
        let kind = ServerKind::PcieV100x4;
        let topo = kind.cluster(8); // 32 GPUs
        let costs = model.costs(&kind.device(), model.default_batch, Precision::Fp32);
        g.bench_with_input(
            BenchmarkId::new("32gpu", model.name.clone()),
            &costs,
            |b, costs| b.iter(|| std::hint::black_box(simulate_dp(costs, &topo, 32))),
        );
    }
    g.finish();
}

fn bench_fig12_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_precision");
    let model = zoo::gnmt8();
    let kind = ServerKind::NvlinkV100x8;
    let topo = kind.cluster(2);
    for precision in [Precision::Fp32, Precision::Fp16] {
        let costs = model.costs(&kind.device(), model.default_batch, precision);
        g.bench_function(format!("{precision:?}"), |b| {
            b.iter(|| std::hint::black_box(simulate_dp(&costs, &topo, 16)))
        });
    }
    g.finish();
}

fn bench_table1_fig1_full(c: &mut Criterion) {
    // Whole Figure-1 regeneration (all servers × models × GPU counts).
    c.bench_function("fig1_full", |b| {
        b.iter(|| std::hint::black_box(pipedream_bench::fig1::run()))
    });
}

criterion_group!(
    benches,
    bench_fig1_kernel,
    bench_fig12_kernel,
    bench_table1_fig1_full
);
criterion_main!(benches);
