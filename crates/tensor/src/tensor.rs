//! Dense row-major `f32` tensors.

use crate::gemm;
use crate::pool;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are dynamic (a `Vec<usize>`); rank-2 tensors are interpreted as
/// `[rows, cols]` matrices by the linear-algebra helpers. The first
/// dimension is the batch dimension throughout the layer library.
///
/// Allocation goes through the thread-local [`crate::pool`]: fresh
/// tensors (including clones and op outputs) reuse recycled buffers, and
/// [`Tensor::recycle`] hands a tensor's storage back when a hot path
/// knows it is done with it. Matrix products dispatch through
/// [`crate::gemm`] (tiled kernel by default, the seed scalar kernel via
/// [`gemm::set_thread_backend`]).
#[derive(PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: pool::take_copy(&self.data),
        }
    }
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: pool::take_zeroed(n),
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        let mut data = pool::take_empty(n);
        data.resize(n, value);
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Build a tensor from raw data; panics if `data.len()` does not match
    /// the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            data.len(),
            "shape {shape:?} wants {n} elements, got {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: pool::take_copy(data),
        }
    }

    /// Return this tensor's storage to the thread-local buffer pool.
    ///
    /// Purely an optimization — dropping a tensor is always correct —
    /// but hot paths (pipeline workers consuming messages, `Sequential`
    /// discarding intermediate activations) recycle so steady-state
    /// training stops allocating per minibatch.
    pub fn recycle(self) {
        pool::give(self.data);
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Number of rows when interpreted as a matrix (`shape[0]`, or 1 for
    /// rank-0).
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(1)
    }

    /// Number of columns when interpreted as a matrix (product of all
    /// non-batch dimensions).
    pub fn cols(&self) -> usize {
        if self.shape.len() <= 1 {
            if self.shape.is_empty() {
                1
            } else {
                self.shape[0]
            }
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {shape:?} wants {n} elements");
        Tensor {
            shape: shape.to_vec(),
            data: pool::take_copy(&self.data),
        }
    }

    /// Matrix element accessor for rank-2 tensors.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable matrix element accessor for rank-2 tensors.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    fn matmul_dims(&self, rhs: &Tensor) -> (usize, usize, usize) {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank-2");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        (m, k, n)
    }

    /// Matrix product `self × rhs` for rank-2 tensors
    /// (`[m,k] × [k,n] → [m,n]`), via the thread's selected GEMM kernel.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k, n) = self.matmul_dims(rhs);
        let mut out = pool::take_zeroed(m * n);
        gemm::gemm(
            &mut out, &self.data, &rhs.data, m, k, n, false, false, false,
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// `self × rhs` written into `out` (shape-checked), reusing `out`'s
    /// storage — the allocation-free variant for steady-state loops.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        let (m, k, n) = self.matmul_dims(rhs);
        assert_eq!(out.shape(), &[m, n], "matmul_into output shape");
        gemm::gemm(
            &mut out.data,
            &self.data,
            &rhs.data,
            m,
            k,
            n,
            false,
            false,
            false,
        );
    }

    /// `self × rhsᵀ` for `self: [m,k]`, `rhs: [n,k]` — the transposition
    /// happens inside the kernel's packing, so nothing is materialized.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank-2");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be rank-2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dims {k} vs {k2}");
        let mut out = pool::take_zeroed(m * n);
        gemm::gemm(&mut out, &self.data, &rhs.data, m, k, n, false, true, false);
        Tensor::from_vec(&[m, n], out)
    }

    /// `selfᵀ × rhs` for `self: [k,m]`, `rhs: [k,n]`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank-2");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be rank-2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dims {k} vs {k2}");
        let mut out = pool::take_zeroed(m * n);
        gemm::gemm(&mut out, &self.data, &rhs.data, m, k, n, true, false, false);
        Tensor::from_vec(&[m, n], out)
    }

    /// `self += aᵀ × b` for `a: [k,m]`, `b: [k,n]`, `self: [m,n]` — the
    /// gradient-accumulation product (`dW += xᵀ·g`) fused into one pass.
    pub fn add_matmul_tn(&mut self, a: &Tensor, b: &Tensor) {
        let (k, m) = (a.shape[0], a.shape[1]);
        let (k2, n) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "add_matmul_tn inner dims {k} vs {k2}");
        assert_eq!(self.shape(), &[m, n], "add_matmul_tn output shape");
        gemm::gemm(&mut self.data, &a.data, &b.data, m, k, n, true, false, true);
    }

    /// `self += a × bᵀ` for `a: [m,k]`, `b: [n,k]`, `self: [m,n]`.
    pub fn add_matmul_nt(&mut self, a: &Tensor, b: &Tensor) {
        let (m, k) = (a.shape[0], a.shape[1]);
        let (n, k2) = (b.shape[0], b.shape[1]);
        assert_eq!(k, k2, "add_matmul_nt inner dims {k} vs {k2}");
        assert_eq!(self.shape(), &[m, n], "add_matmul_nt output shape");
        gemm::gemm(&mut self.data, &a.data, &b.data, m, k, n, false, true, true);
    }

    /// `self += a × b` (both untransposed).
    pub fn add_matmul(&mut self, a: &Tensor, b: &Tensor) {
        let (m, k, n) = a.matmul_dims(b);
        assert_eq!(self.shape(), &[m, n], "add_matmul output shape");
        gemm::gemm(
            &mut self.data,
            &a.data,
            &b.data,
            m,
            k,
            n,
            false,
            false,
            true,
        );
    }

    /// Matrix product through the seed scalar kernel, regardless of the
    /// thread backend — the reference side of the differential suite.
    pub fn matmul_naive(&self, rhs: &Tensor) -> Tensor {
        let (m, k, n) = self.matmul_dims(rhs);
        let mut out = pool::take_zeroed(m * n);
        gemm::gemm_reference(
            &mut out, &self.data, &rhs.data, m, k, n, false, false, false,
        );
        Tensor::from_vec(&[m, n], out)
    }

    /// Transpose a rank-2 tensor (cache-blocked).
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose needs rank-2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = pool::take_zeroed(m * n);
        gemm::transpose_into(&mut out, &self.data, m, n);
        Tensor::from_vec(&[n, m], out)
    }

    /// Transpose into an existing `[n, m]` tensor, reusing its storage.
    pub fn transpose_into(&self, out: &mut Tensor) {
        assert_eq!(self.shape.len(), 2, "transpose needs rank-2");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(out.shape(), &[n, m], "transpose_into output shape");
        gemm::transpose_into(&mut out.data, &self.data, m, n);
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = pool::take_empty(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise map in place — no allocation.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Elementwise binary op with a shape-identical tensor.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "zip shape mismatch");
        let mut data = pool::take_empty(self.data.len());
        data.extend(
            self.data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b)),
        );
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise `self = f(self, rhs)` in place — no allocation.
    pub fn zip_inplace(&mut self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) {
        assert_eq!(self.shape, rhs.shape, "zip shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a = f(*a, b);
        }
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip(rhs, |a, b| a * b)
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place scaling by `s`.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in self.data.iter_mut() {
            *x *= s;
        }
    }

    /// Overwrite every element with `v` (in place; `fill(0.0)` is the
    /// allocation-free `zero_grad`).
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Overwrite this tensor's contents from a shape-identical source —
    /// the allocation-free alternative to `*self = src.clone()`.
    pub fn copy_from(&mut self, src: &Tensor) {
        assert_eq!(self.shape, src.shape, "copy_from shape mismatch");
        self.data.copy_from_slice(&src.data);
    }

    /// In-place `self += alpha * rhs` (axpy), shape-checked.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Per-row argmax for rank-2 tensors (used for classification accuracy).
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        (0..self.shape[0])
            .map(|r| {
                let row = &self.data[r * n..(r + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Extract row `r` of a rank-2 tensor as a rank-1 tensor.
    pub fn row(&self, r: usize) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let n = self.shape[1];
        Tensor {
            shape: vec![n],
            data: pool::take_copy(&self.data[r * n..(r + 1) * n]),
        }
    }

    /// Stack rank-1 rows into a rank-2 tensor; panics on ragged input.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let n = rows[0].len();
        let mut data = pool::take_empty(rows.len() * n);
        for r in rows {
            assert_eq!(r.len(), n, "ragged rows in stack_rows");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(&[rows.len(), n], data)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:.4}, {:.4}, …]", self.data[0], self.data[1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
        assert_eq!(a.matmul_naive(&b).data(), c.data());
    }

    #[test]
    fn matmul_into_reuses_storage() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let mut out = Tensor::full(&[2, 2], 99.0);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_products_match_materialized_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        // a·b == a·(bᵀ)ᵀ via matmul_nt.
        assert_eq!(a.matmul_nt(&b.transpose()).data(), a.matmul(&b).data());
        // matmul_tn on the stored transpose recovers a·b.
        let at = a.transpose();
        assert_eq!(at.matmul_tn(&b).data(), a.matmul(&b).data());
    }

    #[test]
    fn add_matmul_accumulates() {
        let x = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        let g = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let mut dw = Tensor::full(&[2, 2], 1.0);
        dw.add_matmul_tn(&x, &g); // xᵀ·g = g since x = I
        assert_eq!(dw.data(), &[2., 3., 4., 5.]);
        let mut c = Tensor::zeros(&[2, 2]);
        c.add_matmul(&x, &g);
        assert_eq!(c.data(), g.data());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
        let mut out = Tensor::zeros(&[3, 2]);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn inplace_ops_match_allocating_ops() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = Tensor::from_slice(&[0.5, 0.5, 0.5]);
        let mut m = a.clone();
        m.map_inplace(|x| x * 2.0);
        assert_eq!(m, a.map(|x| x * 2.0));
        let mut z = a.clone();
        z.zip_inplace(&b, |x, y| x + y);
        assert_eq!(z, a.add(&b));
        let mut s = a.clone();
        s.scale_inplace(3.0);
        assert_eq!(s, a.scale(3.0));
        let mut f = a.clone();
        f.fill(0.0);
        assert_eq!(f, Tensor::zeros(&[3]));
        let mut c = Tensor::zeros(&[3]);
        c.copy_from(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        a.axpy(0.5, &Tensor::from_slice(&[4.0, 8.0]));
        assert_eq!(a.data(), &[3.0, 6.0]);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5]);
        assert_eq!(t.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn stack_rows_round_trip() {
        let rows = vec![Tensor::from_slice(&[1., 2.]), Tensor::from_slice(&[3., 4.])];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.row(1).data(), &[3., 4.]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_rejects_wrong_len() {
        Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn cols_flattens_trailing_dims() {
        let t = Tensor::zeros(&[4, 3, 2, 2]);
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 12);
    }

    #[test]
    fn recycled_storage_is_reused() {
        crate::pool::clear_thread_pool();
        let a = Tensor::zeros(&[64, 64]);
        let misses_before = crate::pool::thread_stats().misses;
        a.recycle();
        let _b = Tensor::zeros(&[64, 64]);
        let stats = crate::pool::thread_stats();
        assert_eq!(stats.misses, misses_before, "second allocation must hit");
    }
}
