//! Figure 11: accuracy vs *epoch* — PipeDream's statistical efficiency
//! matches data parallelism.
//!
//! Two complementary reproductions:
//!
//! 1. the paper-scale curves (VGG-16 top-1, GNMT-16 BLEU) from the
//!    calibrated convergence model, where weight stashing is BSP-identical
//!    by construction (the calibration encodes the paper's Figure 11);
//! 2. a *real* measurement on the training runtime: a small model trained
//!    (a) sequentially, (b) 4-stage pipelined with weight stashing, and
//!    (c) 4-stage pipelined naively — per-epoch accuracies show (a) ≈ (b)
//!    while (c) trails.

use crate::util::format_table;
use pipedream_convergence::{gnmt, vgg16 as vgg_task, Mode, Task};
use pipedream_core::PipelineConfig;
use pipedream_runtime::{
    train_pipeline, train_sequential, LrSchedule, OptimKind, Semantics, TrainOpts,
};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Relu, Tanh};
use pipedream_tensor::Sequential;
use std::fmt;

/// Result of the runtime measurement (per-epoch training loss; loss shows
/// the gradient-validity gap more sharply than accuracy on a small task).
#[derive(Debug, Clone)]
pub struct RuntimeParity {
    /// Per-epoch loss, sequential SGD.
    pub sequential: Vec<f32>,
    /// Per-epoch loss, 4-stage 1F1B with weight stashing.
    pub stashed: Vec<f32>,
    /// Per-epoch loss, 4-stage naive pipelining.
    pub naive: Vec<f32>,
}

/// The figure: model-scale curves plus the real runtime parity check.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// (task, epochs-to-target) for BSP == weight stashing.
    pub tasks: Vec<(Task, f64)>,
    /// Real-runtime accuracy-vs-epoch comparison.
    pub runtime: RuntimeParity,
}

fn mlp(seed: u64) -> Sequential {
    let mut r = rng(seed);
    Sequential::new("fig11")
        .push(Linear::new(8, 48, &mut r))
        .push(Tanh::new())
        .push(Linear::new(48, 48, &mut r))
        .push(Relu::new())
        .push(Linear::new(48, 48, &mut r))
        .push(Tanh::new())
        .push(Linear::new(48, 48, &mut r))
        .push(Linear::new(48, 4, &mut r))
}

/// Run the experiment (`epochs` of real training; 14 is enough to see the
/// separation while staying fast in CI).
pub fn run(epochs: usize) -> Fig11 {
    let tasks = vec![
        (
            vgg_task(),
            vgg_task().epochs_to_target(Mode::WeightStashing).unwrap(),
        ),
        (
            gnmt(),
            gnmt().epochs_to_target(Mode::WeightStashing).unwrap(),
        ),
    ];
    let data = blobs(256, 8, 4, 1.0, 2);
    let opts = TrainOpts {
        epochs,
        batch: 16,
        optim: OptimKind::Sgd {
            lr: 0.04,
            momentum: 0.9,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs: None,
        ..TrainOpts::default()
    };
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let (_, seq) = train_sequential(mlp(3), &data, &opts);
    let (_, stash) = train_pipeline(mlp(3), &config, &data, &opts);
    let mut naive_opts = opts.clone();
    naive_opts.semantics = Semantics::Naive;
    let (_, naive) = train_pipeline(mlp(3), &config, &data, &naive_opts);
    Fig11 {
        tasks,
        runtime: RuntimeParity {
            sequential: seq.per_epoch.iter().map(|e| e.loss).collect(),
            stashed: stash.per_epoch.iter().map(|e| e.loss).collect(),
            naive: naive.per_epoch.iter().map(|e| e.loss).collect(),
        },
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11: statistical efficiency — accuracy vs epoch\n\n\
             Model-scale (calibrated curves; weight stashing ≡ BSP):"
        )?;
        for (task, e) in &self.tasks {
            writeln!(
                f,
                "  {:<10} target {} {} in {:.0} epochs (same for DP and PipeDream)",
                task.model, task.target, task.metric, e
            )?;
        }
        writeln!(
            f,
            "\nReal runtime, training loss per epoch (4-stage pipeline, small MLP,\n\
             4-class blobs — stashing tracks sequential SGD; naive pipelining lags):"
        )?;
        let header = ["epoch", "sequential", "1F1B+stash", "naive"];
        let rows: Vec<Vec<String>> = (0..self.runtime.sequential.len())
            .map(|e| {
                vec![
                    e.to_string(),
                    format!("{:.4}", self.runtime.sequential[e]),
                    format!("{:.4}", self.runtime.stashed[e]),
                    format!("{:.4}", self.runtime.naive[e]),
                ]
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn stashed_tracks_sequential_and_beats_naive() {
        let f = super::run(16);
        let last = f.runtime.sequential.len() - 1;
        let seq = f.runtime.sequential[last];
        let stash = f.runtime.stashed[last];
        let naive = f.runtime.naive[last];
        assert!(
            stash < seq * 1.5,
            "stashed loss {stash} should track sequential {seq}"
        );
        assert!(
            stash < naive,
            "stashed loss {stash} should beat naive {naive}"
        );
    }
}
