//! Subcommand implementations.

use crate::args::{
    AnalyzeArgs, DpArgs, ExportArgs, InspectArgs, PlanArgs, ServeArgs, SimulateArgs, Target,
    TopArgs, TrainArgs,
};
use pipedream_autopilot::{train_with_autopilot, AutopilotOpts, AutopilotState};
use pipedream_core::schedule::Schedule;
use pipedream_core::{PipelineConfig, Planner, ScheduleKind};
use pipedream_ft::{train_with_recovery, DelayStraggler, Fault, FaultPlan};
use pipedream_hw::{ClusterPreset, Device, LinkModel, Precision, Topology};
use pipedream_model::{profile_sequential, zoo, ModelProfile};
use pipedream_obs::{
    analyze_trace, parse_chrome_trace, render_live_dashboard, render_live_status, sim_to_snapshot,
    what_if, BubbleCause, CriticalPathReport, LiveProfiler,
};
use pipedream_runtime::trainer::{evaluate, try_train_pipeline};
use pipedream_runtime::{train_pipeline, LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_sim::{render_timeline, simulate_dp, simulate_pipeline};
use pipedream_tensor::data::{blobs, Dataset};
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Tanh};
use pipedream_tensor::{Sequential, Tensor};
use std::fmt::Write as _;
use std::fs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn load_model(name: &str) -> Result<ModelProfile, String> {
    if let Some(path) = name.strip_prefix('@') {
        let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        return serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"));
    }
    match name.to_ascii_lowercase().as_str() {
        "vgg16" | "vgg-16" => Ok(zoo::vgg16()),
        "resnet50" | "resnet-50" => Ok(zoo::resnet50()),
        "alexnet" => Ok(zoo::alexnet()),
        "gnmt8" | "gnmt-8" => Ok(zoo::gnmt8()),
        "gnmt16" | "gnmt-16" => Ok(zoo::gnmt16()),
        "awd-lm" | "awdlm" | "lm" => Ok(zoo::awd_lm()),
        "s2vt" => Ok(zoo::s2vt()),
        "huge-lm" | "hugelm" => Ok(zoo::huge_lm()),
        other => Err(format!(
            "unknown model '{other}' (try vgg16, resnet50, alexnet, gnmt8, gnmt16, awd-lm, s2vt, huge-lm, or @profile.json)"
        )),
    }
}

fn load_topology(t: &Target) -> Result<Topology, String> {
    if let Some(spec) = &t.topology {
        let path = spec.strip_prefix('@').unwrap_or(spec);
        let json = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        return serde_json::from_str(&json).map_err(|e| format!("parsing {path}: {e}"));
    }
    let preset = match t.cluster {
        'A' => ClusterPreset::A,
        'B' => ClusterPreset::B,
        _ => ClusterPreset::C,
    };
    Ok(preset.with_servers(t.servers))
}

/// `pipedream plan`.
pub fn plan(a: PlanArgs) -> Result<String, String> {
    let model = load_model(&a.target.model)?;
    let topo = load_topology(&a.target)?;
    let batch = a.batch.unwrap_or(model.default_batch);
    let mut planner =
        Planner::with_options(&model, &topo, batch, Precision::Fp32).with_schedule(a.schedule);
    if let Some(gb) = a.memory_limit_gb {
        planner = planner.with_memory_limit((gb * (1u64 << 30) as f64) as u64);
    }
    let plan = if a.flat {
        planner.try_plan_flat()
    } else {
        planner.try_plan()
    }
    .map_err(|e| e.to_string())?;
    if a.json {
        return serde_json::to_string_pretty(&plan).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model {} ({} layers, {:.1} M params) on {} workers",
        model.name,
        model.num_layers(),
        model.total_params() as f64 / 1e6,
        topo.total_workers()
    );
    let _ = writeln!(
        out,
        "configuration: {} ({})",
        plan.config,
        plan.config.label()
    );
    let _ = writeln!(
        out,
        "predicted: {:.0} samples/s, bottleneck {:.2} ms/minibatch, NOAM {}",
        plan.samples_per_sec,
        plan.bottleneck_s * 1e3,
        plan.noam
    );
    for (i, st) in plan.config.stages().iter().enumerate() {
        let _ = writeln!(
            out,
            "  stage {i}: layers {:>2}..={:<2} [{} … {}]  × {} worker(s)",
            st.first_layer,
            st.last_layer,
            model.layers[st.first_layer].name,
            model.layers[st.last_layer].name,
            st.replicas
        );
    }
    Ok(out)
}

fn resolve_config(
    spec: &str,
    model: &ModelProfile,
    topo: &Topology,
) -> Result<PipelineConfig, String> {
    let planner = Planner::new(model, topo);
    let n = model.num_layers();
    let w = topo.total_workers();
    match spec {
        "auto" => Ok(planner.try_plan_flat().map_err(|e| e.to_string())?.config),
        "dp" => Ok(PipelineConfig::data_parallel(n, w)),
        "straight" => {
            let d = w.min(n);
            let b = planner
                .balanced_boundaries(d)
                .ok_or_else(|| format!("cannot split {n} layers into {d} stages"))?;
            Ok(PipelineConfig::straight(n, &b))
        }
        dash => {
            // Dash notation "15-1": replica counts per stage; layers are
            // split compute-balanced into that many stages.
            let counts: Result<Vec<usize>, _> = dash.split('-').map(str::parse).collect();
            let counts = counts.map_err(|_| format!("cannot parse config '{dash}'"))?;
            if counts.iter().sum::<usize>() != w {
                return Err(format!(
                    "config '{dash}' uses {} workers but the cluster has {w}",
                    counts.iter().sum::<usize>()
                ));
            }
            let d = counts.len();
            if d == 1 {
                return Ok(PipelineConfig::data_parallel(n, w));
            }
            let b = planner
                .balanced_boundaries(d)
                .ok_or_else(|| format!("cannot split {n} layers into {d} stages"))?;
            let mut stages = Vec::new();
            let mut first = 0usize;
            for (i, &r) in counts.iter().enumerate() {
                let last = if i + 1 == d { n - 1 } else { b[i] };
                stages.push(pipedream_core::StagePlan::new(first, last, r));
                first = last + 1;
            }
            Ok(PipelineConfig::new(stages))
        }
    }
}

/// `pipedream simulate`.
pub fn simulate(a: SimulateArgs) -> Result<String, String> {
    let model = load_model(&a.target.model)?;
    let topo = load_topology(&a.target)?;
    let config = resolve_config(&a.config, &model, &topo)?;
    let costs = model.costs(&topo.device, model.default_batch, Precision::Fp32);
    let schedule = Schedule::one_f_one_b(&config, a.minibatches);
    let r = simulate_pipeline(&costs, &topo, &schedule);
    let mut trace_note = None;
    if let Some(path) = &a.trace {
        // Same schema `train --trace` writes, so `analyze` accepts both and
        // can diff a simulated critical path against a measured one.
        let snap = sim_to_snapshot(&r, &config);
        let json = pipedream_obs::render_chrome_trace(&snap);
        fs::write(path, json).map_err(|e| format!("--trace {path}: {e}"))?;
        trace_note = Some(format!("wrote simulated Chrome trace to {path}"));
    }
    if a.json {
        return serde_json::to_string_pretty(&r).map_err(|e| e.to_string());
    }
    let mut out = String::new();
    if let Some(note) = trace_note {
        let _ = writeln!(out, "{note}");
    }
    let _ = writeln!(
        out,
        "config {} on {} workers",
        config.label(),
        config.total_workers()
    );
    let _ = writeln!(
        out,
        "throughput {:.0} samples/s ({:.2} ms/minibatch), utilization {:.0}%",
        r.samples_per_sec,
        r.per_minibatch_s * 1e3,
        r.mean_utilization * 100.0
    );
    let _ = writeln!(
        out,
        "communication {:.1} MB over {} minibatches; peak memory {:.2} GB",
        r.comm_bytes as f64 / 1e6,
        a.minibatches,
        *r.peak_memory_bytes.iter().max().unwrap_or(&0) as f64 / (1u64 << 30) as f64
    );
    if a.timeline {
        let _ = writeln!(out, "\n{}", render_timeline(&r.timeline, 100));
    }
    Ok(out)
}

/// `pipedream dp`.
pub fn dp(a: DpArgs) -> Result<String, String> {
    let model = load_model(&a.target.model)?;
    let topo = load_topology(&a.target)?;
    let gpus = a.gpus.unwrap_or_else(|| topo.total_workers());
    let precision = if a.fp16 {
        Precision::Fp16
    } else {
        Precision::Fp32
    };
    let costs = model.costs(&topo.device, model.default_batch, precision);
    let r = simulate_dp(&costs, &topo, gpus);
    if a.json {
        return serde_json::to_string_pretty(&r).map_err(|e| e.to_string());
    }
    Ok(format!(
        "data parallelism, {gpus} GPUs, {precision:?}: {:.0} samples/s, \
         iteration {:.2} ms (compute {:.2} ms, stall {:.0}%)\n",
        r.samples_per_sec,
        r.iteration_s * 1e3,
        r.compute_s * 1e3,
        r.stall_fraction * 100.0
    ))
}

/// The synthetic demo pipeline `train` and `top` share: a 2·stages-layer
/// MLP on the 4-class blobs task, split one boundary per stage.
fn demo_pipeline(stages: usize, seed: u64) -> (Sequential, PipelineConfig, Dataset) {
    let width = 32usize;
    let mut r = rng(seed);
    let mut model = Sequential::new("cli-mlp").push(Linear::new(8, width, &mut r));
    for _ in 0..(2 * stages - 3) {
        model.push_boxed(Box::new(Tanh::new()));
        let lin = Linear::new(width, width, &mut r);
        model.push_boxed(Box::new(lin));
    }
    model.push_boxed(Box::new(Linear::new(width, 4, &mut r)));
    let n_layers = model.len();
    let boundaries: Vec<usize> = (1..stages).map(|i| i * n_layers / stages - 1).collect();
    let config = PipelineConfig::straight(n_layers, &boundaries);
    let data = blobs(256, 8, 4, 0.8, seed ^ 0xda7a);
    (model, config, data)
}

/// Background thread that drains the session rings every `period` and
/// prints one [`render_live_status`] line to stderr; returns the final
/// [`pipedream_obs::LiveSnapshot`] when stopped.
struct Watcher {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<pipedream_obs::LiveSnapshot>,
}

impl Watcher {
    fn spawn(session: Arc<pipedream_obs::TraceSession>, period: std::time::Duration) -> Watcher {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut profiler = LiveProfiler::new(session.clone());
            while !stop2.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                let live = profiler.sample();
                // The trainer publishes the run length once the schedule is
                // built, which turns the status line into progress + ETA.
                let total = session.metrics().gauge("train_total_minibatches").get() as u64;
                eprintln!(
                    "{}",
                    render_live_status(&live, (total > 0).then_some(total))
                );
            }
            profiler.sample()
        });
        Watcher { stop, handle }
    }

    fn finish(self) -> pipedream_obs::LiveSnapshot {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().expect("watcher thread panicked")
    }
}

/// `straggle:stage=S,ms=M` — a persistent [`DelayStraggler`] on every
/// forward send from `stage`, for exercising `analyze` and `top` against
/// a continuously degraded run (a one-shot `delay:` fault fires once).
fn parse_straggler(spec: &str) -> Result<DelayStraggler, String> {
    let body = spec.strip_prefix("straggle:").unwrap_or(spec);
    let mut stage = None;
    let mut ms = None;
    for part in body.split(',') {
        match part.split_once('=') {
            Some(("stage", v)) => stage = v.parse::<usize>().ok(),
            Some(("ms", v)) => ms = v.parse::<u64>().ok(),
            _ => {}
        }
    }
    match (stage, ms) {
        (Some(s), Some(m)) if m > 0 => {
            Ok(DelayStraggler::new(s, std::time::Duration::from_millis(m)))
        }
        _ => Err("expected straggle:stage=S,ms=M with ms ≥ 1".into()),
    }
}

/// `pipedream train`.
pub fn train(a: TrainArgs) -> Result<String, String> {
    if !(2..=8).contains(&a.stages) {
        return Err("--stages must be between 2 and 8".into());
    }
    let semantics = match a.semantics.as_str() {
        "stashed" => Semantics::Stashed,
        "naive" => Semantics::Naive,
        "vsync" => Semantics::VerticalSync,
        "gpipe" => Semantics::GPipe { microbatches: 4 },
        other => return Err(format!("unknown semantics '{other}'")),
    };
    if a.schedule != ScheduleKind::Vanilla1F1B && semantics != Semantics::Stashed {
        return Err(format!(
            "--schedule {} requires --semantics stashed",
            a.schedule
        ));
    }
    let (model, config, data) = demo_pipeline(a.stages, a.seed);
    let (train_set, test_set) = data.split(0.25);
    // --fault implies checkpointing so the recovery supervisor has
    // something to restart from; --auto-replan implies it so the autopilot
    // can drain and repartition.
    let checkpoint_dir = match (&a.checkpoint_dir, a.fault.is_some() || a.auto_replan) {
        (Some(d), _) => Some(std::path::PathBuf::from(d)),
        (None, true) => {
            Some(std::env::temp_dir().join(format!("pipedream-train-ckpt-{}", std::process::id())))
        }
        (None, false) => None,
    };
    // Any observability flag opens a trace session shared by the workers,
    // the gradient-sync groups, and (under --fault) the recovery
    // supervisor.
    let session = if a.trace.is_some() || a.metrics || a.timeline || a.watch {
        Some(pipedream_obs::TraceSession::new())
    } else {
        None
    };
    let watcher = match (&session, a.watch) {
        (Some(s), true) => Some(Watcher::spawn(
            s.clone(),
            std::time::Duration::from_millis(250),
        )),
        _ => None,
    };
    let opts = TrainOpts {
        epochs: a.epochs,
        batch: a.batch,
        optim: OptimKind::Sgd {
            lr: a.lr,
            momentum: 0.0,
        },
        semantics,
        schedule: a.schedule,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir,
        checkpoint_every: a.checkpoint_every,
        resume: false,
        depth: None,
        trace: a.trace.is_some(),
        obs: session.clone(),
        ..TrainOpts::default()
    };
    let mut fault_fired = true;
    let mut straggler: Option<Arc<DelayStraggler>> = None;
    let (mut trained, report) = if a.auto_replan {
        // A fault under the autopilot rides along as a plain hook: only
        // delay faults make sense (the autopilot reconfigures around a
        // degraded-but-alive pipeline; crashes need the recovery
        // supervisor).
        let mut plan = None;
        match &a.fault {
            None => {}
            Some(spec) if spec.starts_with("straggle:") => {
                straggler = Some(Arc::new(
                    parse_straggler(spec).map_err(|e| format!("--fault: {e}"))?,
                ));
            }
            Some(spec) => {
                let p = Arc::new(FaultPlan::parse(spec).map_err(|e| format!("--fault: {e}"))?);
                if !matches!(p.fault(), Fault::Delay { .. }) {
                    return Err(
                        "--auto-replan combines only with delay:… or straggle:… faults; use \
                         kill/drop/corrupt without --auto-replan for the recovery supervisor"
                            .into(),
                    );
                }
                plan = Some(p);
            }
        };
        // The autopilot re-plans over the measured-vs-profiled gap, so it
        // needs the healthy per-layer profile and a topology for the
        // demo's worker threads.
        let topo = Topology::flat(
            Device::v100(),
            a.stages,
            LinkModel::new(1e14, 0.0),
            "local-threads",
        );
        let mut prof_model = model.clone();
        let profile = profile_sequential(
            &mut prof_model,
            &Tensor::zeros(&[a.batch, 8]),
            1,
            3,
            &topo.device,
        );
        let costs = profile.costs(&topo.device, a.batch, Precision::Fp32);
        let auto = AutopilotOpts::default();
        let hook = plan
            .clone()
            .map(|p| p as Arc<dyn pipedream_runtime::fault::FaultHook>)
            .or_else(|| {
                straggler
                    .clone()
                    .map(|s| s as Arc<dyn pipedream_runtime::fault::FaultHook>)
            });
        let result = train_with_autopilot(
            &model, &config, &train_set, &opts, &costs, &topo, &auto, hook,
        )
        .map_err(|e| e.to_string())?;
        if let Some(p) = &plan {
            fault_fired = p.fired();
        }
        if let Some(s) = &straggler {
            fault_fired = s.times_fired() > 0;
        }
        result
    } else {
        match &a.fault {
            None => train_pipeline(model, &config, &train_set, &opts),
            Some(spec) if spec.starts_with("straggle:") => {
                let hook = Arc::new(parse_straggler(spec).map_err(|e| format!("--fault: {e}"))?);
                straggler = Some(hook.clone());
                let result =
                    try_train_pipeline(model, &config, &train_set, &opts, Some(hook.clone()))
                        .map_err(|e| e.to_string())?;
                fault_fired = hook.times_fired() > 0;
                result
            }
            Some(spec) => {
                let plan = Arc::new(FaultPlan::parse(spec).map_err(|e| format!("--fault: {e}"))?);
                let result = train_with_recovery(&model, &config, &train_set, &opts, plan.clone())
                    .map_err(|e| e.to_string())?;
                fault_fired = plan.fired();
                result
            }
        }
    };
    let final_live = watcher.map(Watcher::finish);
    let mut out = String::new();
    if let Some(live) = &final_live {
        let _ = writeln!(
            out,
            "live: {}",
            render_live_status(live, Some(live.minibatches_total))
        );
    }
    let _ = writeln!(
        out,
        "trained {}-stage pipeline ({:?}) for {} epochs on 4-class blobs",
        a.stages, semantics, a.epochs
    );
    if let Some(hook) = &straggler {
        if fault_fired {
            let _ = writeln!(
                out,
                "injected persistent straggler on stage {}: {} forward send(s) delayed",
                hook.stage(),
                hook.times_fired()
            );
        } else {
            let _ = writeln!(
                out,
                "straggler on stage {} never fired; training ran clean",
                hook.stage()
            );
        }
    }
    if let Some(rec) = &report.recovery {
        if fault_fired {
            let _ = writeln!(
                out,
                "injected fault `{}`: detected in {:.1} ms, resumed from {}, {} epoch(s) / {} minibatch(es) redone",
                rec.fault,
                rec.detection_latency_s * 1e3,
                match (rec.resumed_from_epoch, rec.resumed_from_mb) {
                    (Some(e), Some(g)) => format!("epoch-{e} checkpoint (global mb {g})"),
                    (Some(e), None) => format!("epoch-{e} checkpoint"),
                    _ => "nothing (no restart needed)".to_string(),
                },
                rec.epochs_redone,
                rec.minibatches_redone,
            );
            if let Some(k) = rec.checkpoint_every {
                let _ = writeln!(
                    out,
                    "mid-epoch checkpoints every {k} minibatches bound the redo to ≤ {k} + in-flight"
                );
            }
        } else {
            let _ = writeln!(
                out,
                "fault `{}` never fired (no op matched the spec); training ran clean",
                rec.fault
            );
        }
    }
    for rec in &report.reconfig {
        let _ = writeln!(
            out,
            "autopilot: replanned {} -> {} at epoch {}{}: downtime {:.0} ms, \
             {} minibatch(es) redone, throughput {:.0} -> {:.0} samples/s, verdict {}",
            rec.old_label,
            rec.new_label,
            rec.drained_epoch,
            rec.drained_mb
                .map(|mb| format!(" (minibatch {mb})"))
                .unwrap_or_default(),
            rec.downtime_ms,
            rec.minibatches_redone,
            rec.throughput_before,
            rec.throughput_after,
            rec.verdict,
        );
    }
    if a.auto_replan && report.reconfig.is_empty() {
        let _ = writeln!(
            out,
            "autopilot: no reconfiguration (no sustained drift detected)"
        );
    }
    for e in &report.per_epoch {
        let _ = writeln!(
            out,
            "  epoch {:>2}: loss {:.4}, accuracy {:.1}%",
            e.epoch,
            e.loss,
            e.accuracy * 100.0
        );
    }
    let _ = writeln!(
        out,
        "held-out accuracy {:.1}%, wall time {:.2}s across {} worker threads",
        evaluate(&mut trained, &test_set, a.batch) * 100.0,
        report.wall_time_s,
        config.total_workers()
    );
    if let Some(path) = &a.report {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("--report {path}: {e}"))?;
        let _ = writeln!(out, "wrote TrainReport JSON to {path}");
    }
    if let Some(session) = &session {
        let snap = session.snapshot();
        if a.timeline {
            let timeline = pipedream_obs::to_timeline(&snap);
            let _ = writeln!(out, "\n{}", render_timeline(&timeline, 100));
        }
        if let Some(path) = &a.trace {
            // Stream track-by-track straight to disk: the full document is
            // never materialised in memory, so big runs trace flat.
            let file = fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
            let mut w = std::io::BufWriter::new(file);
            pipedream_obs::write_chrome_trace_session(session, &mut w)
                .and_then(|()| {
                    use std::io::Write as _;
                    w.flush()
                })
                .map_err(|e| format!("--trace {path}: {e}"))?;
            let _ = writeln!(
                out,
                "wrote Chrome trace to {path} (load in Perfetto or chrome://tracing)"
            );
        }
        if a.metrics {
            let _ = writeln!(out, "\n{}", session.metrics().render_prometheus());
        }
    }
    Ok(out)
}

/// `pipedream inspect`: print the per-layer profile table — the paper's
/// `(T_l, a_l, w_l)` triple for every layer, plus totals — and/or, with
/// `--from-trace`, the *measured* per-stage table replayed offline from a
/// recorded Chrome trace through the same aggregation `--watch` uses live.
pub fn inspect(a: InspectArgs) -> Result<String, String> {
    let mut out = String::new();
    if let Some(name) = &a.model {
        let model = load_model(name)?;
        let batch = a.batch.unwrap_or(model.default_batch);
        let device = pipedream_hw::Device::v100();
        let costs = model.costs(&device, batch, Precision::Fp32);
        let _ = writeln!(
            out,
            "{} — {} layers, {:.1} M params ({:.2} GB fp32), per-GPU batch {batch}\n",
            model.name,
            model.num_layers(),
            model.total_params() as f64 / 1e6,
            model.total_weight_bytes(Precision::Fp32) as f64 / (1u64 << 30) as f64
        );
        let _ = writeln!(
            out,
            "{:<14} {:>14} {:>12} {:>12} {:>14}",
            "layer", "fwd+bwd (ms)", "a_l (MB)", "w_l (MB)", "flops/sample"
        );
        for (l, c) in model.layers.iter().zip(costs.layers.iter()) {
            let _ = writeln!(
                out,
                "{:<14} {:>14.3} {:>12.2} {:>12.2} {:>14.2e}",
                l.name,
                c.total_s() * 1e3,
                c.activation_bytes as f64 / 1e6,
                c.weight_bytes as f64 / 1e6,
                l.flops_fwd
            );
        }
        let _ = writeln!(
            out,
            "{:<14} {:>14.3} {:>12} {:>12.2}",
            "TOTAL",
            costs.total_compute_all() * 1e3,
            "",
            costs.weight_bytes_all() as f64 / 1e6
        );
    }
    if let Some(path) = &a.from_trace {
        let json = fs::read_to_string(path).map_err(|e| format!("--from-trace {path}: {e}"))?;
        let snap = parse_chrome_trace(&json).map_err(|e| format!("--from-trace {path}: {e}"))?;
        let live = LiveProfiler::replay(&snap);
        if !out.is_empty() {
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "measured from {path} — {} track(s), {} minibatch(es), {:.2}s wall\n",
            snap.tracks.len(),
            live.minibatches_total,
            live.t_s
        );
        let _ = writeln!(
            out,
            "{:<6} {:>5} {:>14} {:>12} {:>12} {:>6} {:>6} {:>8}",
            "stage", "mbs", "mean/mb (ms)", "p50 (ms)", "p99 (ms)", "busy%", "comm%", "bubble%"
        );
        for s in &live.stages {
            let _ = writeln!(
                out,
                "{:<6} {:>5} {:>14.3} {:>12.3} {:>12.3} {:>6.1} {:>6.1} {:>8.1}",
                s.stage,
                s.minibatches,
                s.ewma_compute_per_mb_s * 1e3,
                s.p50_compute_s * 1e3,
                s.p99_compute_s * 1e3,
                s.busy_frac * 100.0,
                s.comm_frac * 100.0,
                s.bubble_frac * 100.0,
            );
        }
    }
    Ok(out)
}

/// One-line autopilot control-plane status read back from the metrics
/// the pilot publishes to the caller's session: the `autopilot_state`
/// gauge (position on the reconfiguration ladder) plus the reconfig
/// attempt/verdict counters and the last measured downtime.
fn autopilot_status_line(m: &pipedream_obs::MetricsRegistry) -> String {
    let state = AutopilotState::from_code(m.gauge("autopilot_state").get() as u8)
        .map(AutopilotState::name)
        .unwrap_or("unknown");
    let mut line = format!(
        "autopilot: state={state}  reconfigs={} (committed {}, rolled back {})",
        m.counter("reconfig_attempts_total").get(),
        m.counter("reconfig_committed_total").get(),
        m.counter("reconfig_rolled_back_total").get(),
    );
    let downtime = m.gauge("reconfig_downtime_ms").get();
    if downtime > 0.0 {
        let _ = write!(line, "  last downtime {downtime:.0} ms");
    }
    line
}

/// One-line memory-schedule status from the gauges the trainer publishes:
/// the active [`ScheduleKind`], the worst per-stage weight-version
/// residency, and the total recompute time spent so far.
fn schedule_status_line(m: &pipedream_obs::MetricsRegistry, stages: usize) -> String {
    let kind = ScheduleKind::all()
        .get(m.gauge("train_schedule_kind").get() as usize)
        .map(|k| k.as_str())
        .unwrap_or("?");
    let mut versions_max = 0.0f64;
    let mut recompute_ms = 0.0f64;
    for s in 0..stages {
        versions_max = versions_max.max(m.gauge(&format!("stage{s}_versions_held")).get());
        recompute_ms += m.gauge(&format!("stage{s}_recompute_ms")).get();
    }
    format!("schedule={kind}  versions_held_max={versions_max:.0}  recompute={recompute_ms:.1} ms")
}

/// `pipedream top`: run the demo training pipeline with tracing on and
/// repaint a live per-stage dashboard (EWMA/percentile compute, busy /
/// comm / bubble split, stash depth, recent-window ASCII timeline) every
/// `--refresh-ms` until training finishes. With `--auto-replan` the demo
/// runs under the autopilot and every frame carries a control-plane
/// status line. Returns the final frame.
pub fn top(a: TopArgs) -> Result<String, String> {
    if !(2..=8).contains(&a.stages) {
        return Err("--stages must be between 2 and 8".into());
    }
    let (model, config, data) = demo_pipeline(a.stages, a.seed);
    let (train_set, _) = data.split(0.25);
    let session = pipedream_obs::TraceSession::new();
    let opts = TrainOpts {
        epochs: a.epochs,
        batch: a.batch,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: a.auto_replan.then(|| {
            std::env::temp_dir().join(format!("pipedream-top-ckpt-{}", std::process::id()))
        }),
        obs: Some(session.clone()),
        ..TrainOpts::default()
    };
    let trainer = if a.auto_replan {
        // The autopilot replans over the measured-vs-profiled gap, so it
        // needs the healthy per-layer profile and a topology. Worker
        // spans land on the pilot's per-segment internal sessions; the
        // caller's session still carries the control track and metrics
        // the status line reads.
        let topo = Topology::flat(
            Device::v100(),
            a.stages,
            LinkModel::new(1e14, 0.0),
            "local-threads",
        );
        let mut prof_model = model.clone();
        let profile = profile_sequential(
            &mut prof_model,
            &Tensor::zeros(&[a.batch, 8]),
            1,
            3,
            &topo.device,
        );
        let costs = profile.costs(&topo.device, a.batch, Precision::Fp32);
        std::thread::spawn(move || {
            let auto = AutopilotOpts::default();
            train_with_autopilot(
                &model, &config, &train_set, &opts, &costs, &topo, &auto, None,
            )
            .map_err(|e| e.to_string())
        })
    } else {
        std::thread::spawn(move || Ok(train_pipeline(model, &config, &train_set, &opts)))
    };
    let mut profiler = LiveProfiler::new(session.clone());
    let period = std::time::Duration::from_millis(a.refresh_ms.max(10));
    while !trainer.is_finished() {
        std::thread::sleep(period);
        let live = profiler.sample();
        let snap = session.snapshot();
        let mut frame = render_live_dashboard(&live, &snap, 2.0, 100);
        let _ = write!(
            frame,
            "\n{}",
            schedule_status_line(session.metrics(), a.stages)
        );
        if a.auto_replan {
            let _ = write!(frame, "\n{}", autopilot_status_line(session.metrics()));
        }
        // ANSI clear + home, then the current frame.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    let (_, report) = trainer.join().expect("training thread panicked")?;
    let live = profiler.sample();
    let snap = session.snapshot();
    let mut out = render_live_dashboard(&live, &snap, 2.0, 100);
    let _ = writeln!(
        out,
        "\n{}",
        schedule_status_line(session.metrics(), a.stages)
    );
    if a.auto_replan {
        let _ = writeln!(out, "\n{}", autopilot_status_line(session.metrics()));
        for rec in &report.reconfig {
            let _ = writeln!(
                out,
                "autopilot: replanned {} -> {} at epoch {}{}: downtime {:.0} ms, verdict {}",
                rec.old_label,
                rec.new_label,
                rec.drained_epoch,
                rec.drained_mb
                    .map(|mb| format!(" (minibatch {mb})"))
                    .unwrap_or_default(),
                rec.downtime_ms,
                rec.verdict,
            );
        }
    }
    let _ = writeln!(
        out,
        "\ndone: {} epoch(s) in {:.2}s, final loss {:.4}",
        a.epochs,
        report.wall_time_s,
        report.per_epoch.last().map(|e| e.loss).unwrap_or(f32::NAN)
    );
    Ok(out)
}

fn load_trace_report(
    path: &str,
) -> Result<(pipedream_obs::TraceSnapshot, CriticalPathReport), String> {
    let json = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let snap = parse_chrome_trace(&json).map_err(|e| format!("{path}: {e}"))?;
    let report = analyze_trace(&snap);
    Ok((snap, report))
}

/// `pipedream analyze`: offline critical-path analysis of a recorded
/// Chrome trace (`train --trace` or `simulate --trace`). Ranks stages by
/// critical-path share, attributes every non-compute nanosecond to a
/// typed bubble cause, optionally predicts the end-to-end gain of
/// speeding one stage up, and optionally diffs the measured critical
/// path against a simulated trace's, stage by stage.
pub fn analyze(a: AnalyzeArgs) -> Result<String, String> {
    let (snap, report) = load_trace_report(&a.trace)?;
    let prediction = a.what_if.map(|(stage, frac)| what_if(&report, stage, frac));
    let sim = a
        .sim
        .as_deref()
        .map(load_trace_report)
        .transpose()?
        .map(|(_, r)| r);

    if a.json {
        let mut doc = serde_json::Map::new();
        doc.insert(
            "report".into(),
            serde_json::to_value(&report).map_err(|e| e.to_string())?,
        );
        if let Some(w) = &prediction {
            doc.insert(
                "what_if".into(),
                serde_json::to_value(w).map_err(|e| e.to_string())?,
            );
        }
        if let Some(s) = &sim {
            doc.insert(
                "sim_report".into(),
                serde_json::to_value(s).map_err(|e| e.to_string())?,
            );
        }
        return serde_json::to_string_pretty(&serde_json::Value::Object(doc))
            .map_err(|e| e.to_string());
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: wall {:.2} ms, {} minibatch(es) ({:.3} ms/minibatch), {} track(s) over {} stage(s)",
        a.trace,
        report.wall_s * 1e3,
        report.minibatches,
        report.per_minibatch_s * 1e3,
        snap.tracks.len(),
        report.per_stage.len(),
    );

    let _ = writeln!(out, "\nranked by critical-path share:");
    let wall = report.wall_s.max(f64::MIN_POSITIVE);
    for (i, c) in report.ranked().into_iter().take(a.top).enumerate() {
        let bubble = c
            .breakdown
            .top_bubble()
            .map(|(cause, s)| format!("  top bubble: {} {:.2} ms", cause.name(), s * 1e3))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  #{} stage {}  {:>9.2} ms on the critical path ({:>5.1}% of wall){}",
            i + 1,
            c.stage,
            c.seconds * 1e3,
            c.seconds / wall * 100.0,
            bubble
        );
    }

    let _ = writeln!(out, "\nper-stage attribution (causes sum to wall):");
    for s in &report.per_stage {
        let causes: Vec<String> = BubbleCause::ALL
            .iter()
            .filter_map(|&cause| {
                let v = s.breakdown.get(cause);
                (v > 0.0).then(|| format!("{} {:.2}", cause.name(), v * 1e3))
            })
            .collect();
        let _ = writeln!(
            out,
            "  stage {}: {}  [service {:.3} ms/mb over {} track(s)]",
            s.stage,
            causes.join(" | "),
            s.service_per_mb_s * 1e3,
            s.tracks
        );
    }

    if let Some(w) = &prediction {
        let _ = writeln!(
            out,
            "\nwhat-if: speed stage {} up by {:.0}% -> {:.3} ms/minibatch becomes {:.3} \
             (predicted gain {:.1}%)",
            w.stage,
            w.speedup_frac * 100.0,
            w.baseline_per_mb_s * 1e3,
            w.predicted_per_mb_s * 1e3,
            w.predicted_gain_frac * 100.0,
        );
    }

    if let Some(sim) = &sim {
        let _ = writeln!(
            out,
            "\nsim diff vs {} (sim wall {:.2} ms, measured {:.2} ms):",
            a.sim.as_deref().unwrap_or(""),
            sim.wall_s * 1e3,
            report.wall_s * 1e3,
        );
        let _ = writeln!(
            out,
            "  {:<6} {:>15} {:>15} {:>10}",
            "stage", "measured-cp ms", "sim-cp ms", "delta ms"
        );
        let cp_of = |r: &CriticalPathReport, stage: usize| {
            r.critical_path
                .iter()
                .find(|c| c.stage == stage)
                .map(|c| c.seconds)
                .unwrap_or(0.0)
        };
        let stages = report.per_stage.len().max(sim.per_stage.len());
        for stage in 0..stages {
            let m = cp_of(&report, stage);
            let s = cp_of(sim, stage);
            let _ = writeln!(
                out,
                "  {:<6} {:>15.2} {:>15.2} {:>+10.2}",
                stage,
                m * 1e3,
                s * 1e3,
                (m - s) * 1e3
            );
        }
    }

    Ok(out)
}

/// `pipedream export`: write a zoo model profile and/or a preset topology
/// as JSON — the same format `--model @file.json` / `--topology @file.json`
/// accept, so users can start from a preset and edit.
/// `pipedream serve`: run the planning daemon until `--for-secs` elapses
/// (0 = forever). Prints the bound address up front so scripts can scrape
/// it; the returned summary reports traffic and cache behaviour.
pub fn serve(a: ServeArgs) -> Result<String, String> {
    use pipedream_obs::MetricsRegistry;
    use pipedream_serve::{ServeOptions, Server};

    let metrics = Arc::new(MetricsRegistry::new());
    let server = Server::start(
        ServeOptions {
            addr: a.addr.clone(),
            threads: a.threads,
            queue: a.queue,
            cache_capacity: a.cache,
            cache_shards: a.shards,
            default_deadline_ms: a.deadline_ms,
            idle_timeout_ms: 0,
        },
        Arc::clone(&metrics),
    )
    .map_err(|e| format!("binding {}: {e}", a.addr))?;
    println!(
        "pipedream serve listening on http://{} ({} workers, queue {}, cache {}x{} shards)",
        server.addr(),
        a.threads,
        a.queue,
        a.cache,
        a.shards
    );
    println!("endpoints: POST /plan /simulate /validate · GET /metrics /healthz");

    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(200));
        if a.for_secs > 0 && started.elapsed().as_secs() >= a.for_secs {
            break;
        }
    }
    let stats = server.state().cache.stats();
    server.shutdown();
    Ok(format!(
        "served {:.0} s: cache {} hits / {} misses / {} evictions / {} coalesced",
        started.elapsed().as_secs_f64(),
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.coalesced
    ))
}

pub fn export(a: ExportArgs) -> Result<String, String> {
    let mut doc = serde_json::Map::new();
    if let Some(model) = &a.model {
        let profile = load_model(model)?;
        doc.insert(
            "model_profile".into(),
            serde_json::to_value(&profile).map_err(|e| e.to_string())?,
        );
    }
    if let Some(cluster) = a.cluster {
        let topo = load_topology(&Target {
            model: String::new(),
            cluster,
            servers: a.servers,
            topology: None,
        })?;
        doc.insert(
            "topology".into(),
            serde_json::to_value(&topo).map_err(|e| e.to_string())?,
        );
    }
    // A single-section export unwraps to the bare object so the file can be
    // fed straight back via @file.json.
    let value = if doc.len() == 1 {
        doc.into_iter().next().unwrap().1
    } else {
        serde_json::Value::Object(doc)
    };
    let json = serde_json::to_string_pretty(&value).map_err(|e| e.to_string())?;
    match &a.out {
        Some(path) => {
            fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
            Ok(format!("wrote {path}\n"))
        }
        None => Ok(json),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Target;

    fn target(model: &str) -> Target {
        Target {
            model: model.into(),
            cluster: 'A',
            servers: 1,
            topology: None,
        }
    }

    #[test]
    fn plan_vgg_renders() {
        let out = plan(PlanArgs {
            target: Target {
                servers: 4,
                ..target("vgg16")
            },
            batch: None,
            flat: true,
            memory_limit_gb: None,
            schedule: ScheduleKind::Vanilla1F1B,
            json: false,
        })
        .unwrap();
        assert!(out.contains("configuration: 15-1"), "{out}");
        assert!(out.contains("stage 0"));
    }

    #[test]
    fn plan_json_is_valid() {
        let out = plan(PlanArgs {
            target: target("resnet50"),
            batch: Some(32),
            flat: false,
            memory_limit_gb: Some(16.0),
            schedule: ScheduleKind::Vanilla1F1B,
            json: true,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v.get("config").is_some());
    }

    #[test]
    fn simulate_auto_config() {
        let out = simulate(SimulateArgs {
            target: target("gnmt8"),
            config: "auto".into(),
            minibatches: 24,
            timeline: true,
            json: false,
            trace: None,
        })
        .unwrap();
        assert!(out.contains("throughput"));
        assert!(out.contains("worker"), "timeline rendered: {out}");
    }

    #[test]
    fn simulate_dash_config_validates_worker_count() {
        let err = simulate(SimulateArgs {
            target: target("vgg16"),
            config: "9-1".into(), // 10 workers on a 4-GPU cluster
            minibatches: 8,
            timeline: false,
            json: false,
            trace: None,
        })
        .unwrap_err();
        assert!(err.contains("workers"), "{err}");
    }

    #[test]
    fn dp_reports_stall() {
        let out = dp(DpArgs {
            target: target("awd-lm"),
            gpus: None,
            fp16: false,
            json: false,
        })
        .unwrap();
        assert!(out.contains("stall"));
    }

    #[test]
    fn train_runs_and_learns() {
        let out = train(TrainArgs {
            stages: 3,
            epochs: 6,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap();
        assert!(out.contains("held-out accuracy"));
        assert!(!out.contains("injected fault"));
    }

    #[test]
    fn train_with_fault_recovers() {
        let dir = std::env::temp_dir().join(format!("pd-cli-fault-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = train(TrainArgs {
            stages: 3,
            epochs: 3,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: Some("kill:stage=1,mb=20".into()),
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap();
        assert!(out.contains("injected fault `kill:stage=1,mb=20`"), "{out}");
        assert!(out.contains("held-out accuracy"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_trace_metrics_timeline_outputs() {
        let dir = std::env::temp_dir().join(format!("pd-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run-trace.json");
        let out = train(TrainArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: Some(path.to_string_lossy().into_owned()),
            metrics: true,
            timeline: true,
            watch: false,
            auto_replan: false,
        })
        .unwrap();
        assert!(out.contains("wrote Chrome trace"), "{out}");
        assert!(out.contains("minibatches_total"), "{out}");
        assert!(out.contains("worker  0 |"), "timeline rendered: {out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap().clone();
        assert!(!events.is_empty());
        // One metadata record per worker track.
        let names: Vec<String> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(names.contains(&"stage0.replica0".to_string()), "{names:?}");
        assert!(names.contains(&"stage1.replica0".to_string()), "{names:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn train_rejects_bad_fault_spec() {
        let err = train(TrainArgs {
            stages: 3,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: Some("explode:stage=1".into()),
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap_err();
        assert!(err.contains("--fault"), "{err}");
    }

    #[test]
    fn inspect_prints_layer_table() {
        let out = inspect(InspectArgs {
            model: Some("vgg16".into()),
            batch: None,
            from_trace: None,
        })
        .unwrap();
        assert!(out.contains("conv1_1"));
        assert!(out.contains("fc8"));
        assert!(out.contains("TOTAL"));
        assert!(out.contains("138.4 M params"));
    }

    #[test]
    fn train_watch_appends_final_status_line() {
        let out = train(TrainArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: true,
            auto_replan: false,
        })
        .unwrap();
        assert!(out.contains("live: ["), "{out}");
        assert!(out.contains("mb/s"), "{out}");
        assert!(out.contains("held-out accuracy"), "{out}");
    }

    #[test]
    fn train_auto_replan_completes_and_reports() {
        let dir = std::env::temp_dir().join(format!("pd-cli-auto-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = train(TrainArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: None,
            checkpoint_dir: Some(dir.to_string_lossy().into_owned()),
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: true,
        })
        .unwrap();
        // Whether or not the tiny demo run drifts, the autopilot reports
        // its outcome and the run trains to completion.
        assert!(out.contains("autopilot:"), "{out}");
        assert!(out.contains("held-out accuracy"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn train_auto_replan_rejects_crash_faults() {
        let err = train(TrainArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: Some("kill:stage=1,mb=5".into()),
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: true,
        })
        .unwrap_err();
        assert!(err.contains("--auto-replan"), "{err}");
    }

    #[test]
    fn inspect_from_trace_replays_measured_stages() {
        // Record a real run, then replay the written Chrome trace offline.
        let dir = std::env::temp_dir().join(format!("pd-cli-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("watch-trace.json");
        train(TrainArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: Some(path.to_string_lossy().into_owned()),
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap();
        let out = inspect(InspectArgs {
            model: None,
            batch: None,
            from_trace: Some(path.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(out.contains("measured from"), "{out}");
        assert!(out.contains("busy%"), "{out}");
        // Both stages of the recorded 2-stage run appear in the table.
        assert!(out.lines().any(|l| l.starts_with("0 ")), "{out}");
        assert!(out.lines().any(|l| l.starts_with("1 ")), "{out}");
        // With a model too, the profiled table precedes the measured one.
        let both = inspect(InspectArgs {
            model: Some("alexnet".into()),
            batch: None,
            from_trace: Some(path.to_string_lossy().into_owned()),
        })
        .unwrap();
        let profiled = both.find("TOTAL").unwrap();
        let measured = both.find("measured from").unwrap();
        assert!(profiled < measured, "{both}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inspect_from_trace_missing_file_is_friendly() {
        let err = inspect(InspectArgs {
            model: None,
            batch: None,
            from_trace: Some("/nonexistent/trace.json".into()),
        })
        .unwrap_err();
        assert!(err.contains("--from-trace"), "{err}");
    }

    #[test]
    fn top_renders_dashboard_and_finishes() {
        let out = top(TopArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            seed: 3,
            refresh_ms: 50,
            auto_replan: false,
        })
        .unwrap();
        assert!(out.contains("ewma/mb"), "{out}");
        assert!(out.contains("bubble%"), "{out}");
        // PR 8 memory-schedule gauges surface on every frame.
        assert!(out.contains("schedule=vanilla"), "{out}");
        assert!(out.contains("versions_held_max="), "{out}");
        assert!(out.contains("recompute="), "{out}");
        assert!(out.contains("done: 2 epoch(s)"), "{out}");
        assert!(!out.contains("autopilot:"), "{out}");
    }

    #[test]
    fn top_auto_replan_surfaces_control_plane_status() {
        let out = top(TopArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            seed: 3,
            refresh_ms: 50,
            auto_replan: true,
        })
        .unwrap();
        // Whether or not the tiny demo run drifts, the final frame must
        // carry the autopilot status line with a valid ladder state.
        assert!(out.contains("autopilot: state="), "{out}");
        assert!(out.contains("reconfigs="), "{out}");
        assert!(!out.contains("state=unknown"), "{out}");
        assert!(out.contains("done: 2 epoch(s)"), "{out}");
    }

    #[test]
    fn simulate_trace_feeds_analyze() {
        let dir = std::env::temp_dir().join(format!("pd-cli-simtrace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.json");
        let out = simulate(SimulateArgs {
            target: Target {
                servers: 1,
                ..target("alexnet")
            },
            config: "straight".into(),
            minibatches: 16,
            timeline: false,
            json: false,
            trace: Some(path.to_string_lossy().into_owned()),
        })
        .unwrap();
        assert!(out.contains("wrote simulated Chrome trace"), "{out}");
        let report = analyze(AnalyzeArgs {
            trace: path.to_string_lossy().into_owned(),
            top: 8,
            what_if: None,
            sim: None,
            json: false,
        })
        .unwrap();
        assert!(report.contains("ranked by critical-path share"), "{report}");
        assert!(report.contains("#1 stage "), "{report}");
        assert!(report.contains("16 minibatch(es)"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analyze_measured_trace_with_what_if_and_sim_diff() {
        let dir = std::env::temp_dir().join(format!("pd-cli-analyze-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let measured = dir.join("run.json");
        train(TrainArgs {
            stages: 2,
            epochs: 2,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: None,
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: Some(measured.to_string_lossy().into_owned()),
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap();
        let sim_path = dir.join("sim.json");
        simulate(SimulateArgs {
            target: Target {
                servers: 1,
                ..target("alexnet")
            },
            config: "straight".into(),
            minibatches: 16,
            timeline: false,
            json: false,
            trace: Some(sim_path.to_string_lossy().into_owned()),
        })
        .unwrap();
        let out = analyze(AnalyzeArgs {
            trace: measured.to_string_lossy().into_owned(),
            top: 8,
            what_if: Some((0, 0.5)),
            sim: Some(sim_path.to_string_lossy().into_owned()),
            json: false,
        })
        .unwrap();
        assert!(out.contains("per-stage attribution"), "{out}");
        assert!(out.contains("what-if: speed stage 0 up by 50%"), "{out}");
        assert!(out.contains("sim diff vs"), "{out}");
        assert!(out.contains("measured-cp ms"), "{out}");
        // JSON mode round-trips through serde.
        let json = analyze(AnalyzeArgs {
            trace: measured.to_string_lossy().into_owned(),
            top: 8,
            what_if: Some((0, 0.5)),
            sim: None,
            json: true,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(v.get("report").is_some());
        assert!(v.get("what_if").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn train_straggle_fault_traces_and_tops_analyze() {
        let dir = std::env::temp_dir().join(format!("pd-cli-straggle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("straggle.json");
        let out = train(TrainArgs {
            stages: 3,
            epochs: 3,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: Some("straggle:stage=1,ms=3".into()),
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: Some(path.to_string_lossy().into_owned()),
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap();
        assert!(
            out.contains("injected persistent straggler on stage 1"),
            "{out}"
        );
        let report = analyze(AnalyzeArgs {
            trace: path.to_string_lossy().into_owned(),
            top: 3,
            what_if: Some((1, 0.3)),
            sim: None,
            json: false,
        })
        .unwrap();
        assert!(report.contains("#1 stage 1"), "{report}");
        assert!(report.contains("wait_upstream"), "{report}");
        assert!(
            report.contains("what-if: speed stage 1 up by 30%"),
            "{report}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
        // Malformed specs are rejected up front.
        assert!(train(TrainArgs {
            stages: 2,
            epochs: 1,
            batch: 16,
            lr: 0.05,
            semantics: "stashed".into(),
            schedule: ScheduleKind::Vanilla1F1B,
            seed: 3,
            fault: Some("straggle:stage=1".into()),
            checkpoint_dir: None,
            checkpoint_every: None,
            report: None,
            trace: None,
            metrics: false,
            timeline: false,
            watch: false,
            auto_replan: false,
        })
        .unwrap_err()
        .contains("--fault"));
    }

    #[test]
    fn analyze_missing_file_is_friendly() {
        let err = analyze(AnalyzeArgs {
            trace: "/nonexistent/trace.json".into(),
            top: 8,
            what_if: None,
            sim: None,
            json: false,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/trace.json"), "{err}");
    }

    #[test]
    fn export_model_round_trips_through_load() {
        let dir = std::env::temp_dir().join(format!("pd-cli-export-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gnmt8.json");
        export(ExportArgs {
            model: Some("gnmt8".into()),
            cluster: None,
            servers: 1,
            out: Some(path.to_string_lossy().into_owned()),
        })
        .unwrap();
        let loaded = load_model(&format!("@{}", path.display())).unwrap();
        assert_eq!(loaded, zoo::gnmt8());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_topology_json_is_valid() {
        let out = export(ExportArgs {
            model: None,
            cluster: Some('B'),
            servers: 2,
            out: None,
        })
        .unwrap();
        let topo: pipedream_hw::Topology = serde_json::from_str(&out).unwrap();
        assert_eq!(topo.total_workers(), 16);
    }

    #[test]
    fn unknown_model_is_friendly() {
        let err = plan(PlanArgs {
            target: target("nope"),
            batch: None,
            flat: false,
            memory_limit_gb: None,
            schedule: ScheduleKind::Vanilla1F1B,
            json: false,
        })
        .unwrap_err();
        assert!(err.contains("unknown model"));
    }
}
