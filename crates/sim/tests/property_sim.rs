//! Property-based tests for the discrete-event simulator.

use pipedream_core::schedule::Schedule;
use pipedream_core::{PipelineConfig, StagePlan};
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::zoo;
use pipedream_sim::{simulate_dp, simulate_dynamic, simulate_pipeline};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = PipelineConfig> {
    (1usize..=3, proptest::collection::vec(1usize..=3, 1..=3)).prop_map(
        |(layers_per_stage, reps)| {
            let mut stages = Vec::new();
            let mut first = 0;
            for &r in &reps {
                stages.push(StagePlan::new(first, first + layers_per_stage - 1, r));
                first += layers_per_stage;
            }
            PipelineConfig::new(stages)
        },
    )
}

fn topo(workers: usize, gbytes: f64) -> Topology {
    Topology::flat(
        Device::v100(),
        workers,
        LinkModel::from_gbytes(gbytes, 1e-6),
        "prop",
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: every worker's busy time is within the makespan and
    /// per-minibatch time is positive and finite.
    #[test]
    fn conservation_laws(config in arb_config(), n in 4u64..24, flops_exp in 8.0f64..10.0) {
        let profile = zoo::uniform(config.num_layers(), 10f64.powf(flops_exp), 10_000, 50_000);
        let costs = profile.costs(&Device::v100(), 16, Precision::Fp32);
        let t = topo(config.total_workers(), 10.0);
        let r = simulate_pipeline(&costs, &t, &Schedule::one_f_one_b(&config, n));
        prop_assert!(r.per_minibatch_s.is_finite() && r.per_minibatch_s > 0.0);
        for w in 0..config.total_workers() {
            prop_assert!(r.timeline.busy(w) <= r.makespan + 1e-9);
        }
        prop_assert!(r.mean_utilization > 0.0 && r.mean_utilization <= 1.0 + 1e-9);
    }

    /// More bandwidth never slows a pipeline down.
    #[test]
    fn bandwidth_monotonicity(config in arb_config(), n in 8u64..24) {
        let profile = zoo::uniform(config.num_layers(), 1e9, 100_000, 200_000);
        let costs = profile.costs(&Device::v100(), 16, Precision::Fp32);
        let slow = simulate_pipeline(
            &costs,
            &topo(config.total_workers(), 0.5),
            &Schedule::one_f_one_b(&config, n),
        );
        let fast = simulate_pipeline(
            &costs,
            &topo(config.total_workers(), 50.0),
            &Schedule::one_f_one_b(&config, n),
        );
        prop_assert!(
            fast.per_minibatch_s <= slow.per_minibatch_s * 1.0001,
            "fast {} slow {}",
            fast.per_minibatch_s,
            slow.per_minibatch_s
        );
    }

    /// DP stall fraction is in [0, 1) and iteration ≥ compute.
    #[test]
    fn dp_invariants(workers in 1usize..8, flops_exp in 8.0f64..11.0, weights in 1_000u64..10_000_000) {
        let profile = zoo::uniform(5, 10f64.powf(flops_exp), 10_000, weights);
        let costs = profile.costs(&Device::v100(), 16, Precision::Fp32);
        let t = topo(workers.max(1), 5.0);
        let r = simulate_dp(&costs, &t, workers.max(1));
        prop_assert!(r.iteration_s >= r.compute_s - 1e-12);
        prop_assert!((0.0..1.0).contains(&r.stall_fraction));
        prop_assert!(r.samples_per_sec > 0.0);
    }

    /// The static 1F1B schedule's throughput stays within 15% of the
    /// dynamic policy executor across random uniform pipelines — the
    /// paper's static-schedule-suffices claim.
    #[test]
    fn static_schedule_tracks_dynamic_policy(
        stages in 2usize..5,
        n in 16u64..48,
        flops_exp in 8.5f64..10.0,
    ) {
        let config = PipelineConfig::straight(stages, &(0..stages - 1).collect::<Vec<_>>());
        let profile = zoo::uniform(stages, 10f64.powf(flops_exp), 20_000, 50_000);
        let costs = profile.costs(&Device::v100(), 16, Precision::Fp32);
        let t = topo(stages, 10.0);
        let stat = simulate_pipeline(&costs, &t, &Schedule::one_f_one_b(&config, n));
        let dynamic = simulate_dynamic(&costs, &t, &config, n);
        let ratio = stat.per_minibatch_s / dynamic.per_minibatch_s;
        prop_assert!(
            (0.85..=1.15).contains(&ratio),
            "static {} dynamic {}",
            stat.per_minibatch_s,
            dynamic.per_minibatch_s
        );
    }

    /// Throughput scales with device speed: doubling sustained FLOPs on a
    /// compute-bound pipeline roughly halves per-minibatch time.
    #[test]
    fn device_speed_scaling(config in arb_config(), n in 8u64..24) {
        let profile = zoo::uniform(config.num_layers(), 1e10, 1_000, 1_000);
        let slow_dev = Device { name: "slow".into(), peak_flops: 5e12, efficiency: 0.9, mem_bytes: 16 << 30 };
        let fast_dev = Device { name: "fast".into(), peak_flops: 10e12, efficiency: 0.9, mem_bytes: 16 << 30 };
        let w = config.total_workers();
        let link = LinkModel::from_gbytes(100.0, 0.0);
        let t_slow = Topology::flat(slow_dev.clone(), w, link, "s");
        let t_fast = Topology::flat(fast_dev.clone(), w, link, "f");
        let c_slow = profile.costs(&slow_dev, 16, Precision::Fp32);
        let c_fast = profile.costs(&fast_dev, 16, Precision::Fp32);
        let r_slow = simulate_pipeline(&c_slow, &t_slow, &Schedule::one_f_one_b(&config, n));
        let r_fast = simulate_pipeline(&c_fast, &t_fast, &Schedule::one_f_one_b(&config, n));
        let ratio = r_slow.per_minibatch_s / r_fast.per_minibatch_s;
        prop_assert!((1.8..=2.2).contains(&ratio), "speed ratio {ratio}");
    }
}
