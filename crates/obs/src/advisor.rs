//! The replan advisor: feeds *measured* per-stage times back into the
//! partitioning optimizer (paper §3.1) and reports whether a different
//! partition/replication would beat the current one, with the
//! simulated-throughput delta.
//!
//! The planner wants per-*layer* costs but the live profiler measures
//! per-*stage* times, so the advisor scales the offline baseline
//! [`LayerCosts`] layer by layer: every layer in stage `s` has its
//! forward/backward costs multiplied by `measured_s[s] / predicted_s[s]`.
//! That keeps the intra-stage cost *shape* from the offline profile
//! while matching the inter-stage *totals* to what the pipeline is
//! actually doing — exactly the information a repartition needs (a
//! straggling stage gets more expensive, so the DP moves layers off it
//! or throws replicas at it).

use pipedream_core::estimates::memory_footprint_for;
use pipedream_core::{config_fingerprint, PipelineConfig, PlanError, StagePrediction};
use pipedream_core::{Planner, Schedule, ScheduleKind};
use pipedream_hw::Topology;
use pipedream_model::LayerCosts;
use pipedream_sim::PipelineSim;
use serde::{Deserialize, Serialize};

/// Outcome of one replan evaluation. Serializable so the recommended
/// plan can be saved as a CI artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanAdvice {
    /// Label of the configuration the pipeline is running.
    pub current_label: String,
    /// Label of the configuration the planner recommends under measured
    /// costs (may equal `current_label`).
    pub recommended_label: String,
    /// True when the recommendation differs from the current config.
    pub changed: bool,
    /// `core::fingerprint` of the current pipeline configuration, for
    /// matching applied plans against recommendations across reports and
    /// serve-cache entries.
    pub current_plan_fingerprint: u64,
    /// `core::fingerprint` of the recommended pipeline configuration.
    pub recommended_plan_fingerprint: u64,
    /// DP objective (bottleneck seconds/minibatch) of the current config
    /// under measured costs.
    pub current_bottleneck_s: f64,
    /// DP objective of the recommended config under measured costs.
    pub recommended_bottleneck_s: f64,
    /// Simulated steady-state throughput of the current config under
    /// measured costs (samples/second).
    pub current_sim_samples_per_sec: f64,
    /// Simulated throughput of the recommended config (samples/second).
    pub recommended_sim_samples_per_sec: f64,
    /// `recommended_sim / current_sim` (1.0 when unchanged).
    pub sim_speedup: f64,
    /// The recommended configuration itself.
    pub recommended_config: PipelineConfig,
    /// The measured-scaled layer costs the recommendation was planned
    /// from, for reproducibility.
    pub measured_costs: LayerCosts,
    /// True when the replan was forced by memory pressure: the current
    /// configuration's estimated footprint exceeds the advisor's budget,
    /// so the recommendation stands even without a throughput win.
    pub memory_driven: bool,
}

/// Scale the baseline per-layer costs so each stage's total compute
/// matches its measured time. Stages with no measurement yet (or a zero
/// prediction) keep their baseline costs.
pub fn measured_layer_costs(
    baseline: &LayerCosts,
    config: &PipelineConfig,
    predictions: &[StagePrediction],
    measured_stage_s: &[f64],
) -> LayerCosts {
    let mut out = baseline.clone();
    for (si, stage) in config.stages().iter().enumerate() {
        let predicted = predictions
            .iter()
            .find(|p| p.stage == si)
            .map(|p| p.compute_s)
            .unwrap_or(0.0);
        let measured = measured_stage_s.get(si).copied().unwrap_or(0.0);
        if predicted <= 0.0 || measured <= 0.0 {
            continue;
        }
        let ratio = measured / predicted;
        for l in stage.first_layer..=stage.last_layer {
            if let Some(layer) = out.layers.get_mut(l) {
                layer.fwd_s *= ratio;
                layer.bwd_s *= ratio;
            }
        }
    }
    out
}

/// Re-run the partitioner over measured costs and compare against the
/// running configuration. `sim_minibatches` sets the schedule length for
/// the steady-state throughput simulation (enough to amortize fill/drain;
/// 48 is plenty for small pipelines).
///
/// Panics on degenerate inputs; live-run paths (the autopilot control
/// loop, the serve daemon) should use [`try_advise_replan`].
pub fn advise_replan(
    baseline: &LayerCosts,
    topo: &Topology,
    current: &PipelineConfig,
    measured_stage_s: &[f64],
    sim_minibatches: u64,
) -> ReplanAdvice {
    try_advise_replan(baseline, topo, current, measured_stage_s, sim_minibatches)
        .unwrap_or_else(|e| panic!("replan advice failed: {e}"))
}

/// [`advise_replan`] with validated inputs and typed errors instead of
/// panics — the entry point for anything a live training run depends on.
pub fn try_advise_replan(
    baseline: &LayerCosts,
    topo: &Topology,
    current: &PipelineConfig,
    measured_stage_s: &[f64],
    sim_minibatches: u64,
) -> Result<ReplanAdvice, PlanError> {
    try_advise_replan_constrained(
        baseline,
        topo,
        current,
        measured_stage_s,
        sim_minibatches,
        None,
        ScheduleKind::Vanilla1F1B,
    )
}

/// Memory- and schedule-aware replan: the repartition DP only considers
/// candidates whose estimated per-worker footprint fits `memory_limit`
/// under `schedule` (per `estimates::memory_footprint_for`), and the
/// throughput simulation charges the schedule's recompute cost. Two ways
/// a recommendation can differ from plain [`try_advise_replan`]:
///
/// * a faster candidate is rejected because it does not fit, and
/// * when the *current* configuration itself exceeds the budget, the best
///   fitting plan is recommended even if it is slower (`memory_driven`),
///   because the alternative is an OOM, not a slowdown.
///
/// When no partition fits at all, the planner's typed
/// [`PlanError::MemoryInfeasible`] surfaces — the caller's cue to retry
/// under a more memory-efficient [`ScheduleKind`].
#[allow(clippy::too_many_arguments)]
pub fn try_advise_replan_constrained(
    baseline: &LayerCosts,
    topo: &Topology,
    current: &PipelineConfig,
    measured_stage_s: &[f64],
    sim_minibatches: u64,
    memory_limit: Option<u64>,
    schedule: ScheduleKind,
) -> Result<ReplanAdvice, PlanError> {
    let base_planner = Planner::from_costs(baseline.clone(), topo);
    let predictions = base_planner.try_predicted_stage_times(current)?;
    let measured = measured_layer_costs(baseline, current, &predictions, measured_stage_s);

    let mut planner = Planner::from_costs(measured.clone(), topo).with_schedule(schedule);
    if let Some(bytes) = memory_limit {
        planner = planner.with_memory_limit(bytes);
    }
    let current_plan = planner.try_evaluate(current)?;
    let best = planner.try_plan_flat()?;
    let current_oversubscribed = memory_limit.is_some_and(|limit| {
        memory_footprint_for(&measured, current, schedule)
            .iter()
            .any(|s| s.total() > limit)
    });
    // Only advise a change when the DP objective actually improves
    // (plan_flat can tie with the current config under different labels) —
    // unless the incumbent no longer fits in memory, where any fitting
    // plan beats an OOM.
    let memory_driven = current_oversubscribed && best.config != *current;
    let (recommended, changed) = if best.config != *current
        && (memory_driven || best.bottleneck_s < current_plan.bottleneck_s)
    {
        (best, true)
    } else {
        (current_plan.clone(), false)
    };

    let sim_cur = PipelineSim::new(
        &measured,
        topo,
        &Schedule::one_f_one_b(current, sim_minibatches),
    )
    .with_schedule(schedule)
    .run();
    let sim_rec = if changed {
        PipelineSim::new(
            &measured,
            topo,
            &Schedule::one_f_one_b(&recommended.config, sim_minibatches),
        )
        .with_schedule(schedule)
        .run()
    } else {
        sim_cur.clone()
    };

    Ok(ReplanAdvice {
        current_label: current.label(),
        recommended_label: recommended.config.label(),
        changed,
        current_plan_fingerprint: config_fingerprint(current),
        recommended_plan_fingerprint: config_fingerprint(&recommended.config),
        current_bottleneck_s: current_plan.bottleneck_s,
        recommended_bottleneck_s: recommended.bottleneck_s,
        current_sim_samples_per_sec: sim_cur.samples_per_sec,
        recommended_sim_samples_per_sec: sim_rec.samples_per_sec,
        sim_speedup: if sim_cur.samples_per_sec > 0.0 {
            sim_rec.samples_per_sec / sim_cur.samples_per_sec
        } else {
            1.0
        },
        recommended_config: recommended.config,
        measured_costs: measured,
        memory_driven,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedream_hw::{Device, LinkModel};
    use pipedream_model::profile::LayerCost;

    /// 4 uniform layers: 1 ms forward, 2 ms backward each.
    fn uniform_costs() -> LayerCosts {
        LayerCosts {
            model: "test".into(),
            batch: 8,
            layers: (0..4)
                .map(|i| LayerCost {
                    name: format!("l{i}"),
                    fwd_s: 1e-3,
                    bwd_s: 2e-3,
                    activation_bytes: 1024,
                    weight_bytes: 4096,
                })
                .collect(),
        }
    }

    fn topo2() -> Topology {
        Topology::flat(Device::v100(), 2, LinkModel::new(1e14, 0.0), "test")
    }

    #[test]
    fn measured_costs_scale_only_the_straggling_stage() {
        let baseline = uniform_costs();
        let config = PipelineConfig::straight(4, &[1]);
        let topo = topo2();
        let preds = Planner::from_costs(baseline.clone(), &topo)
            .try_predicted_stage_times(&config)
            .unwrap();
        // Stage 0 measured at 3× its prediction, stage 1 on target.
        let measured = measured_layer_costs(
            &baseline,
            &config,
            &preds,
            &[preds[0].compute_s * 3.0, preds[1].compute_s],
        );
        assert!((measured.layers[0].fwd_s - 3e-3).abs() < 1e-9);
        assert!((measured.layers[1].bwd_s - 6e-3).abs() < 1e-9);
        assert!((measured.layers[2].fwd_s - 1e-3).abs() < 1e-9);
        assert!((measured.layers[3].bwd_s - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn unmeasured_stages_keep_baseline_costs() {
        let baseline = uniform_costs();
        let config = PipelineConfig::straight(4, &[1]);
        let topo = topo2();
        let preds = Planner::from_costs(baseline.clone(), &topo)
            .try_predicted_stage_times(&config)
            .unwrap();
        let measured = measured_layer_costs(&baseline, &config, &preds, &[0.0, 0.0]);
        assert_eq!(measured, baseline);
    }

    #[test]
    fn advisor_beats_a_degraded_partition() {
        let baseline = uniform_costs();
        let config = PipelineConfig::straight(4, &[1]);
        let topo = topo2();
        let preds = Planner::from_costs(baseline.clone(), &topo)
            .try_predicted_stage_times(&config)
            .unwrap();
        // Stage 0 straggling at 3×: the balanced 2-2 split is now 9 ms vs
        // 6 ms, so a repartition (or data parallelism) must win.
        let advice = advise_replan(
            &baseline,
            &topo,
            &config,
            &[preds[0].compute_s * 3.0, preds[1].compute_s],
            48,
        );
        assert!(advice.changed, "advisor kept a degraded plan: {advice:?}");
        assert!(
            advice.recommended_bottleneck_s < advice.current_bottleneck_s,
            "DP objective did not improve: {advice:?}"
        );
        assert!(
            advice.recommended_sim_samples_per_sec > advice.current_sim_samples_per_sec,
            "simulated throughput did not improve: {advice:?}"
        );
        assert!(advice.sim_speedup > 1.0);
        assert_ne!(
            advice.current_plan_fingerprint, advice.recommended_plan_fingerprint,
            "a changed plan must carry a distinct fingerprint"
        );
        assert_eq!(
            advice.recommended_plan_fingerprint,
            config_fingerprint(&advice.recommended_config)
        );
    }

    #[test]
    fn healthy_pipeline_keeps_its_plan() {
        let baseline = uniform_costs();
        let topo = topo2();
        // Run the planner's own choice with on-target measurements.
        let best = Planner::from_costs(baseline.clone(), &topo)
            .try_plan_flat()
            .unwrap();
        let preds = Planner::from_costs(baseline.clone(), &topo)
            .try_predicted_stage_times(&best.config)
            .unwrap();
        let measured: Vec<f64> = preds.iter().map(|p| p.compute_s).collect();
        let advice = advise_replan(&baseline, &topo, &best.config, &measured, 48);
        assert!(!advice.changed, "flapped on a healthy plan: {advice:?}");
        assert_eq!(advice.sim_speedup, 1.0);
        assert_eq!(advice.current_label, advice.recommended_label);
    }

    #[test]
    fn memory_pressure_forces_a_replan_and_infeasibility_is_typed() {
        // Weight-heavy regime so stashed versions dominate: 1 MB of
        // weights and 1 KB of activations per layer. On 2 workers the
        // balanced straight split `4-4`... here `2+2` layers peaks at
        // stage 0 with 2 versions × 2 MB ≈ 4.2 MB; the unbalanced `1+3`
        // split peaks at stage 1 with 1 version × 3 MB ≈ 3.1 MB.
        let mut baseline = uniform_costs();
        for l in &mut baseline.layers {
            l.weight_bytes = 1 << 20;
            l.activation_bytes = 1 << 10;
        }
        let topo = topo2();
        let config = PipelineConfig::straight(4, &[1]); // 2 stages, depth 2
        let preds = Planner::from_costs(baseline.clone(), &topo)
            .try_predicted_stage_times(&config)
            .unwrap();
        let measured: Vec<f64> = preds.iter().map(|p| p.compute_s).collect();

        // Unconstrained (and generously constrained): the healthy plan
        // is kept.
        let free = try_advise_replan(&baseline, &topo, &config, &measured, 24).unwrap();
        assert!(!free.memory_driven && !free.changed);
        let roomy = try_advise_replan_constrained(
            &baseline,
            &topo,
            &config,
            &measured,
            24,
            Some(1 << 30),
            ScheduleKind::Vanilla1F1B,
        )
        .unwrap();
        assert_eq!(roomy.recommended_label, free.recommended_label);
        assert!(!roomy.memory_driven && !roomy.changed);

        // 1 MB fits nothing — the typed error surfaces, no panic.
        let err = try_advise_replan_constrained(
            &baseline,
            &topo,
            &config,
            &measured,
            24,
            Some(1 << 20),
            ScheduleKind::Vanilla1F1B,
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::MemoryInfeasible { .. }), "{err:?}");

        // 3.3 MB: the incumbent balanced split no longer fits but the
        // unbalanced one does — the advisor must move off the incumbent
        // even though the DP objective gets *worse* (3 layers on one
        // worker), because staying put means an OOM.
        let squeezed = try_advise_replan_constrained(
            &baseline,
            &topo,
            &config,
            &measured,
            24,
            Some(3_300_000),
            ScheduleKind::Vanilla1F1B,
        )
        .unwrap();
        assert!(squeezed.memory_driven && squeezed.changed, "{squeezed:?}");
        assert_ne!(
            squeezed.recommended_plan_fingerprint,
            config_fingerprint(&config)
        );

        // A 1 MB budget stays infeasible even under 2BW + recompute —
        // one layer's weights alone exceed it — and the error carries
        // the schedule it was evaluated under.
        let err2 = try_advise_replan_constrained(
            &baseline,
            &topo,
            &config,
            &measured,
            24,
            Some(1 << 20),
            ScheduleKind::TwoBWRecompute,
        )
        .unwrap_err();
        assert!(
            matches!(err2, PlanError::MemoryInfeasible { .. }),
            "{err2:?}"
        );
    }

    #[test]
    fn advice_round_trips_through_json() {
        let baseline = uniform_costs();
        let config = PipelineConfig::straight(4, &[1]);
        let topo = topo2();
        let preds = Planner::from_costs(baseline.clone(), &topo)
            .try_predicted_stage_times(&config)
            .unwrap();
        let advice = advise_replan(
            &baseline,
            &topo,
            &config,
            &[preds[0].compute_s * 3.0, preds[1].compute_s],
            24,
        );
        let json = serde_json::to_string(&advice).unwrap();
        let back: ReplanAdvice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, advice);
    }
}
