//! Real-runtime kernels behind Figures 9 and 11: pipeline-parallel epochs
//! on the threaded training runtime vs single-worker SGD.

use criterion::{criterion_group, criterion_main, Criterion};
use pipedream_core::PipelineConfig;
use pipedream_runtime::{
    train_pipeline, train_sequential, LrSchedule, OptimKind, Semantics, TrainOpts,
};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Relu};
use pipedream_tensor::Sequential;

fn mlp() -> Sequential {
    let mut r = rng(5);
    Sequential::new("bench")
        .push(Linear::new(16, 64, &mut r))
        .push(Relu::new())
        .push(Linear::new(64, 64, &mut r))
        .push(Relu::new())
        .push(Linear::new(64, 64, &mut r))
        .push(Relu::new())
        .push(Linear::new(64, 64, &mut r))
        .push(Linear::new(64, 4, &mut r))
}

fn opts() -> TrainOpts {
    TrainOpts {
        epochs: 2,
        batch: 16,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs: None,
        ..TrainOpts::default()
    }
}

fn bench_training_modes(c: &mut Criterion) {
    let data = blobs(256, 16, 4, 0.5, 9);
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let mut g = c.benchmark_group("train_2_epochs");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(train_sequential(mlp(), &data, &opts())))
    });
    g.bench_function("pipeline_4stage_stashed", |b| {
        b.iter(|| std::hint::black_box(train_pipeline(mlp(), &config, &data, &opts())))
    });
    let mut gp = opts();
    gp.semantics = Semantics::GPipe { microbatches: 4 };
    g.bench_function("pipeline_4stage_gpipe", |b| {
        b.iter(|| std::hint::black_box(train_pipeline(mlp(), &config, &data, &gp)))
    });
    g.finish();
}

criterion_group!(benches, bench_training_modes);
criterion_main!(benches);
