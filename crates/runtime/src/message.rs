//! Messages exchanged between stage workers and the coordinator.
//!
//! Tensor payloads are backed by the thread-local buffer pool
//! (`pipedream_tensor::pool`). Ownership of the buffer travels with the
//! message: the *consuming* worker calls [`Tensor::recycle`] once it is
//! done, which parks the storage in the consumer's pool. In steady-state
//! 1F1B each channel carries a constant number of in-flight tensors per
//! direction, so after warm-up every send is served by a buffer recycled
//! from an earlier minibatch and the pipeline stops allocating.

use pipedream_tensor::Tensor;

/// Activation flowing forward from stage `s` to stage `s+1`.
#[derive(Debug, Clone)]
pub struct ActMsg {
    /// Minibatch id.
    pub mb: u64,
    /// Weight version pinned at the input stage (vertical sync only;
    /// 0 otherwise).
    pub version_tag: u64,
    /// Output activations of the producing stage. The receiver owns the
    /// buffer and recycles it after its forward pass consumes it.
    pub data: Tensor,
}

/// Gradient flowing backward from stage `s` to stage `s-1`.
#[derive(Debug, Clone)]
pub struct GradMsg {
    /// Minibatch id.
    pub mb: u64,
    /// Gradient w.r.t. the consuming stage's output activations. The
    /// receiver owns the buffer and recycles it after its backward pass.
    pub data: Tensor,
}

/// Metric events sent to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricMsg {
    /// A completed op with real wall-clock timestamps (tracing only).
    Op(crate::report::OpTrace),
    /// Loss/accuracy of one minibatch, measured at the output stage.
    Loss {
        /// Minibatch id.
        mb: u64,
        /// Mean cross-entropy loss.
        loss: f32,
        /// Correctly classified samples.
        correct: usize,
        /// Samples in the minibatch.
        count: usize,
    },
    /// Which weight version a stage used for a minibatch's forward pass
    /// (drives the Figure-9 / staleness-formula checks).
    FwdVersion {
        /// Pipeline stage.
        stage: usize,
        /// Minibatch id.
        mb: u64,
        /// Local weight version (number of updates applied before this
        /// forward pass).
        version: u64,
    },
    /// Per-worker stash/staleness observations, sent once when the
    /// worker's op sequence completes successfully.
    StageObs(crate::report::StageObsRecord),
    /// Periodic liveness signal, sent only when a fault hook is installed.
    /// A worker that stops heartbeating without finishing is presumed
    /// dead (§4: failures are detected, then all stages restart from the
    /// last complete checkpoint).
    Heartbeat {
        /// Global worker id.
        worker: usize,
        /// Ops executed so far.
        ops_done: u64,
    },
    /// A worker failed with a typed error. Injected kills do *not* send
    /// this — a crashed machine doesn't announce itself — but surviving
    /// peers that fail as collateral do.
    Failure {
        /// Failing stage.
        stage: usize,
        /// Failing replica.
        replica: usize,
        /// The error, rendered (the typed value travels via the worker's
        /// join handle).
        message: String,
    },
}
