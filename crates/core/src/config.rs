//! Pipeline configurations: how layers map to stages and stages to workers.
//!
//! The paper writes configurations as per-stage replica counts: `"15-1"` is
//! two stages with the first replicated over 15 workers; a `"straight"`
//! configuration is `1-1-…-1`; plain data parallelism over 16 workers is a
//! single 16-way-replicated stage, written `"16"`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One pipeline stage: an inclusive range of model layers plus the number of
/// workers the stage is replicated across.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StagePlan {
    /// First layer index (inclusive).
    pub first_layer: usize,
    /// Last layer index (inclusive).
    pub last_layer: usize,
    /// Number of workers running this stage data-parallel (≥ 1).
    pub replicas: usize,
}

impl StagePlan {
    /// Build a stage covering `[first, last]` with `replicas` workers.
    pub fn new(first_layer: usize, last_layer: usize, replicas: usize) -> Self {
        assert!(first_layer <= last_layer, "empty stage layer range");
        assert!(replicas >= 1, "stage needs at least one replica");
        StagePlan {
            first_layer,
            last_layer,
            replicas,
        }
    }

    /// Number of layers in the stage.
    pub fn num_layers(&self) -> usize {
        self.last_layer - self.first_layer + 1
    }
}

/// A full pipeline configuration: consecutive stages covering every layer.
///
/// ```
/// use pipedream_core::PipelineConfig;
///
/// // VGG-16's Table-1 configuration: 13 conv layers over 15 workers,
/// // 3 FC layers on one.
/// let c = PipelineConfig::from_counts(&[(13, 15), (3, 1)]);
/// assert_eq!(c.label(), "15-1");
/// assert_eq!(c.total_workers(), 16);
/// assert_eq!(c.noam(), 2); // ⌈16 / 15⌉ minibatches per input replica
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PipelineConfig {
    stages: Vec<StagePlan>,
}

impl PipelineConfig {
    /// Build from a stage list; panics unless stages are consecutive,
    /// start at layer 0, and have ≥ 1 replica each.
    pub fn new(stages: Vec<StagePlan>) -> Self {
        assert!(!stages.is_empty(), "configuration needs at least one stage");
        assert_eq!(stages[0].first_layer, 0, "stage 0 must start at layer 0");
        for w in stages.windows(2) {
            assert_eq!(
                w[1].first_layer,
                w[0].last_layer + 1,
                "stages must cover consecutive layer ranges"
            );
        }
        PipelineConfig { stages }
    }

    /// Vanilla data parallelism: one stage holding all `num_layers` layers,
    /// replicated over `workers` workers.
    pub fn data_parallel(num_layers: usize, workers: usize) -> Self {
        PipelineConfig::new(vec![StagePlan::new(0, num_layers - 1, workers)])
    }

    /// A straight pipeline (no replication) with stage boundaries *after*
    /// the given layer indices. `boundaries = [3, 7]` over 10 layers gives
    /// stages `[0..=3]`, `[4..=7]`, `[8..=9]`.
    pub fn straight(num_layers: usize, boundaries: &[usize]) -> Self {
        let mut stages = Vec::with_capacity(boundaries.len() + 1);
        let mut first = 0usize;
        for &b in boundaries {
            stages.push(StagePlan::new(first, b, 1));
            first = b + 1;
        }
        stages.push(StagePlan::new(first, num_layers - 1, 1));
        PipelineConfig::new(stages)
    }

    /// Build from per-stage `(layers, replicas)` pairs laid out
    /// consecutively: `from_counts(&[(13, 15), (3, 1)])` is VGG-16's
    /// `15-1` over 16 layers.
    pub fn from_counts(counts: &[(usize, usize)]) -> Self {
        let mut stages = Vec::with_capacity(counts.len());
        let mut first = 0usize;
        for &(layers, replicas) in counts {
            stages.push(StagePlan::new(first, first + layers - 1, replicas));
            first += layers;
        }
        PipelineConfig::new(stages)
    }

    /// The stages, in pipeline order.
    pub fn stages(&self) -> &[StagePlan] {
        &self.stages
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of workers consumed.
    pub fn total_workers(&self) -> usize {
        self.stages.iter().map(|s| s.replicas).sum()
    }

    /// Total number of model layers covered.
    pub fn num_layers(&self) -> usize {
        self.stages.last().unwrap().last_layer + 1
    }

    /// Whether this is vanilla data parallelism (single stage).
    pub fn is_data_parallel(&self) -> bool {
        self.stages.len() == 1
    }

    /// Whether this is a straight pipeline (multiple stages, no replication).
    pub fn is_straight(&self) -> bool {
        self.stages.len() > 1 && self.stages.iter().all(|s| s.replicas == 1)
    }

    /// `NUM_OPT_ACTIVE_MINIBATCHES` (§3.2): minibatches admitted *per input
    /// stage replica* to keep the pipeline full in steady state —
    /// `⌈ workers / input-stage replicas ⌉`.
    pub fn noam(&self) -> usize {
        self.total_workers().div_ceil(self.stages[0].replicas)
    }

    /// Total in-flight minibatches across all input replicas
    /// (`noam × input-stage replicas`).
    pub fn max_in_flight(&self) -> usize {
        self.noam() * self.stages[0].replicas
    }

    /// Per-stage lists of global worker ids (workers are numbered stage by
    /// stage, replicas within a stage consecutive).
    pub fn worker_assignment(&self) -> Vec<Vec<usize>> {
        let mut next = 0usize;
        self.stages
            .iter()
            .map(|s| {
                let ws: Vec<usize> = (next..next + s.replicas).collect();
                next += s.replicas;
                ws
            })
            .collect()
    }

    /// Stage index owning global worker `w`, plus the replica index within
    /// that stage.
    pub fn stage_of_worker(&self, w: usize) -> (usize, usize) {
        let mut base = 0usize;
        for (si, s) in self.stages.iter().enumerate() {
            if w < base + s.replicas {
                return (si, w - base);
            }
            base += s.replicas;
        }
        panic!("worker {w} out of range (total {})", self.total_workers());
    }

    /// Stage index containing model layer `l`.
    pub fn stage_of_layer(&self, l: usize) -> usize {
        self.stages
            .iter()
            .position(|s| s.first_layer <= l && l <= s.last_layer)
            .unwrap_or_else(|| panic!("layer {l} not covered"))
    }

    /// The replica of `stage` that minibatch `mb` is routed to under the
    /// deterministic round-robin rule of 1F1B-RR (§3.2): the forward and
    /// backward pass of a minibatch always land on the same replica.
    pub fn replica_for(&self, stage: usize, mb: u64) -> usize {
        (mb % self.stages[stage].replicas as u64) as usize
    }

    /// Paper-style label: `"16"` for DP, `"straight"` for 1-1-…-1, else the
    /// dash notation such as `"15-1"` or `"2-1-1"`.
    pub fn label(&self) -> String {
        if self.is_data_parallel() {
            format!("{}", self.stages[0].replicas)
        } else if self.is_straight() {
            "straight".to_string()
        } else {
            self.to_string()
        }
    }

    /// Check the configuration against a model: every layer covered exactly
    /// once and `num_layers` matching.
    pub fn validate(&self, num_layers: usize) -> Result<(), String> {
        if self.num_layers() != num_layers {
            return Err(format!(
                "configuration covers {} layers, model has {num_layers}",
                self.num_layers()
            ));
        }
        Ok(())
    }
}

impl fmt::Display for PipelineConfig {
    /// The dash notation: per-stage replica counts, e.g. `15-1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.stages.iter().map(|s| s.replicas.to_string()).collect();
        write!(f, "{}", parts.join("-"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_15_1_notation() {
        let c = PipelineConfig::from_counts(&[(13, 15), (3, 1)]);
        assert_eq!(c.to_string(), "15-1");
        assert_eq!(c.label(), "15-1");
        assert_eq!(c.total_workers(), 16);
        assert_eq!(c.num_layers(), 16);
        assert!(!c.is_straight());
        assert!(!c.is_data_parallel());
    }

    #[test]
    fn straight_label() {
        let c = PipelineConfig::straight(8, &[1, 3, 5]);
        assert_eq!(c.label(), "straight");
        assert_eq!(c.to_string(), "1-1-1-1");
        assert!(c.is_straight());
        assert_eq!(c.noam(), 4);
    }

    #[test]
    fn dp_label_is_worker_count() {
        let c = PipelineConfig::data_parallel(50, 16);
        assert_eq!(c.label(), "16");
        assert!(c.is_data_parallel());
        assert_eq!(c.noam(), 1, "DP admits one minibatch per replica");
    }

    #[test]
    fn noam_matches_paper_formula() {
        // 4-stage straight pipeline on 4 workers → NOAM 4 (Figure 4).
        assert_eq!(PipelineConfig::straight(4, &[0, 1, 2]).noam(), 4);
        // 2-1 configuration on 3 workers → ⌈3/2⌉ = 2 per input replica,
        // i.e. 4 total in flight (Figure 8): one extra minibatch per
        // replica covers the cross-stage round-trip latency.
        let c = PipelineConfig::from_counts(&[(1, 2), (1, 1)]);
        assert_eq!(c.noam(), 2);
        assert_eq!(c.max_in_flight(), 4);
    }

    #[test]
    fn worker_assignment_is_consecutive() {
        let c = PipelineConfig::from_counts(&[(2, 2), (1, 1), (1, 1)]);
        let ws = c.worker_assignment();
        assert_eq!(ws, vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(c.stage_of_worker(1), (0, 1));
        assert_eq!(c.stage_of_worker(3), (2, 0));
    }

    #[test]
    fn round_robin_routing_is_deterministic() {
        let c = PipelineConfig::from_counts(&[(1, 2), (1, 1)]);
        // Even minibatches to replica 0, odd to replica 1 (Figure 8).
        assert_eq!(c.replica_for(0, 0), 0);
        assert_eq!(c.replica_for(0, 1), 1);
        assert_eq!(c.replica_for(0, 2), 0);
        assert_eq!(c.replica_for(1, 5), 0);
    }

    #[test]
    fn stage_of_layer_lookup() {
        let c = PipelineConfig::from_counts(&[(3, 1), (2, 1)]);
        assert_eq!(c.stage_of_layer(0), 0);
        assert_eq!(c.stage_of_layer(2), 0);
        assert_eq!(c.stage_of_layer(3), 1);
    }

    #[test]
    fn validate_rejects_wrong_layer_count() {
        let c = PipelineConfig::from_counts(&[(3, 1), (2, 1)]);
        assert!(c.validate(5).is_ok());
        assert!(c.validate(6).is_err());
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn non_consecutive_stages_rejected() {
        PipelineConfig::new(vec![StagePlan::new(0, 1, 1), StagePlan::new(3, 4, 1)]);
    }
}
