//! Offline stand-in for `serde_json`: prints and parses JSON text against
//! the vendored serde's [`Value`] data model. Supports everything the
//! workspace serializes — objects, arrays, strings with escapes, exact
//! u64/i64 integers, and round-trippable floats (shortest-representation
//! printing via Rust's `Display`).

pub use serde::{Map, Value};

use std::fmt::Write as _;

/// Error raised by parsing or printing, with a byte offset for parse
/// errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    fn at(pos: usize, msg: impl Into<String>) -> Self {
        Error {
            msg: format!("{} at byte {pos}", msg.into()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Lower any serializable value to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Lift a typed value out of a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

// ---- printer ----------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Uint(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display prints the shortest string that parses
                // back to the same f64, so floats round-trip exactly.
                let _ = write!(out, "{f}");
            } else {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::at(
                self.pos,
                format!("unexpected `{}`", other as char),
            )),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::at(self.pos, format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(a));
        }
        loop {
            self.skip_ws();
            a.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(a));
                }
                _ => return Err(Error::at(self.pos, "expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::at(self.pos, "bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::at(self.pos, "bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // printer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::at(self.pos, "invalid \\u code point"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::at(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is passed through by char.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::at(self.pos, "invalid UTF-8"))?;
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::at(start, "invalid number"));
        }
        if !is_float {
            if let Some(neg) = text.strip_prefix('-') {
                if let Ok(i) = neg.parse::<i64>() {
                    return Ok(if i == 0 {
                        Value::Uint(0)
                    } else {
                        Value::Int(-i)
                    });
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::at(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_compact_and_pretty() {
        let mut inner = Map::new();
        inner.insert("pi".into(), Value::Float(3.140000104904175));
        inner.insert("n".into(), Value::Uint(u64::MAX));
        inner.insert("neg".into(), Value::Int(-42));
        inner.insert("s".into(), Value::String("a \"b\"\n\\c\u{1}".into()));
        let v = Value::Object({
            let mut m = Map::new();
            m.insert("inner".into(), Value::Object(inner));
            m.insert(
                "arr".into(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::Array(vec![])]),
            );
            m
        });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "via {text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1e-300, -2.5e17, 123456.789, f64::MIN_POSITIVE] {
            let text = to_string(&Value::Float(f)).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back.as_f64().unwrap(), f, "{text}");
        }
        let f32s = [0.1f32, 1.5e-30, -7.25];
        for f in f32s {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back as f32, f, "{text}");
        }
    }

    #[test]
    fn parse_errors_on_garbage_and_truncation() {
        assert!(from_str::<Value>("{\"a\": 1").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("").is_err());
        assert!(from_str::<Value>("{\"a\": 1} trailing").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn integers_keep_exact_precision() {
        let big = (1u64 << 60) + 1;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }
}
