//! One module per paper artifact. See DESIGN.md §4 for the index.

pub mod ablations;
pub mod asp;
pub mod drift_replan;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig6_7;
pub mod fig9;
pub mod gpipe;
pub mod opt;
pub mod recovery;
pub mod sensitivity;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod timelines;
pub mod trace_validate;
pub mod trend;
pub mod verify;
