//! Per-stage checkpointing (paper §4).
//!
//! "Checkpoints don't require expensive global coordination. Each stage
//! dumps its model parameters locally when it performs the backward pass
//! for the last minibatch in an epoch." Checkpoints here are JSON files of
//! the stage's parameter tensors, one file per (stage, epoch).

use pipedream_tensor::Tensor;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

fn stage_file(dir: &Path, stage: usize, epoch: usize) -> PathBuf {
    dir.join(format!("stage{stage}_epoch{epoch}.json"))
}

/// Write stage `stage`'s parameters at the end of `epoch`.
pub fn save_stage(dir: &Path, stage: usize, epoch: usize, params: &[Tensor]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let json = serde_json::to_string(params).map_err(io::Error::other)?;
    // Write-then-rename so a crash mid-write never corrupts the previous
    // checkpoint.
    let tmp = dir.join(format!(".stage{stage}_epoch{epoch}.tmp"));
    fs::write(&tmp, json)?;
    fs::rename(tmp, stage_file(dir, stage, epoch))
}

/// Load stage `stage`'s parameters from `epoch`'s checkpoint.
pub fn load_stage(dir: &Path, stage: usize, epoch: usize) -> io::Result<Vec<Tensor>> {
    let json = fs::read_to_string(stage_file(dir, stage, epoch))?;
    serde_json::from_str(&json).map_err(io::Error::other)
}

/// Latest epoch for which *all* `stages` checkpoints exist — the epoch a
/// restarted run resumes from (§4: "restarting entails starting from the
/// last successfully created checkpoint for all stages").
pub fn latest_complete_epoch(dir: &Path, stages: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    let entries = fs::read_dir(dir).ok()?;
    let mut epochs: Vec<usize> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let rest = name.strip_prefix("stage0_epoch")?;
            rest.strip_suffix(".json")?.parse().ok()
        })
        .collect();
    epochs.sort_unstable();
    for epoch in epochs {
        if (0..stages).all(|s| stage_file(dir, s, epoch).exists()) {
            best = Some(epoch);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::env;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = env::temp_dir().join(format!("pipedream-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("rt");
        let params = vec![Tensor::from_slice(&[1.0, 2.0]), Tensor::zeros(&[2, 2])];
        save_stage(&dir, 0, 3, &params).unwrap();
        let loaded = load_stage(&dir, 0, 3).unwrap();
        assert_eq!(loaded, params);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_complete_requires_all_stages() {
        let dir = tmpdir("latest");
        let p = vec![Tensor::from_slice(&[0.5])];
        save_stage(&dir, 0, 0, &p).unwrap();
        save_stage(&dir, 1, 0, &p).unwrap();
        save_stage(&dir, 0, 1, &p).unwrap(); // stage 1 epoch 1 missing
        assert_eq!(latest_complete_epoch(&dir, 2), Some(0));
        save_stage(&dir, 1, 1, &p).unwrap();
        assert_eq!(latest_complete_epoch(&dir, 2), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_none() {
        assert_eq!(latest_complete_epoch(Path::new("/nonexistent-pd"), 1), None);
    }
}
