//! Table 1: PipeDream vs data parallelism — auto-chosen configuration,
//! epoch-time speedup, and time-to-accuracy speedup for every (model,
//! cluster) pair the paper evaluates.

use crate::util::{best_plan, dp_throughput, format_table};
use pipedream_convergence::{task_for, Mode};
use pipedream_hw::{ClusterPreset, Precision};
use pipedream_model::{zoo, ModelProfile};
use std::fmt;

/// One Table-1 row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// `servers × gpus (cluster)` label, e.g. `"4x4 (A)"`.
    pub setup: String,
    /// Configuration PipeDream's optimizer picked (paper notation).
    pub config: String,
    /// The paper's reported configuration.
    pub paper_config: &'static str,
    /// Simulated epoch-time speedup over DP.
    pub epoch_speedup: f64,
    /// The paper's epoch-time speedup.
    pub paper_epoch_speedup: f64,
    /// Time-to-accuracy speedup (epoch speedup × epochs ratio; weight
    /// stashing needs the same epochs as BSP, so this equals the epoch
    /// speedup wherever the paper's does).
    pub tta_speedup: Option<f64>,
    /// The paper's TTA speedup (None where the paper reports N/A).
    pub paper_tta_speedup: Option<f64>,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Row>,
}

fn model_by_name(name: &str) -> ModelProfile {
    match name {
        "VGG-16" => zoo::vgg16(),
        "ResNet-50" => zoo::resnet50(),
        "AlexNet" => zoo::alexnet(),
        "GNMT-16" => zoo::gnmt16(),
        "GNMT-8" => zoo::gnmt8(),
        "AWD-LM" => zoo::awd_lm(),
        "S2VT" => zoo::s2vt(),
        _ => panic!("unknown model {name}"),
    }
}

/// The paper's rows: (model, servers, cluster, paper config, paper epoch
/// speedup, paper TTA speedup).
#[allow(clippy::type_complexity)]
// GNMT-16's published speedup happens to be 3.14× — a coincidence, not π.
#[allow(clippy::approx_constant)]
pub fn paper_rows() -> Vec<(
    &'static str,
    usize,
    ClusterPreset,
    &'static str,
    f64,
    Option<f64>,
)> {
    use ClusterPreset::*;
    vec![
        ("VGG-16", 4, A, "15-1", 5.28, Some(5.28)),
        ("VGG-16", 2, B, "15-1", 2.98, Some(2.46)),
        ("ResNet-50", 4, A, "16", 1.0, Some(1.0)),
        ("ResNet-50", 2, B, "16", 1.0, Some(1.0)),
        ("AlexNet", 4, A, "15-1", 4.92, None),
        ("AlexNet", 2, B, "15-1", 2.04, None),
        ("GNMT-16", 1, A, "straight", 1.46, Some(2.2)),
        ("GNMT-16", 4, A, "straight", 2.34, Some(2.92)),
        ("GNMT-16", 2, B, "straight", 3.14, Some(3.14)),
        ("GNMT-8", 1, A, "straight", 1.5, Some(1.5)),
        ("GNMT-8", 3, A, "straight", 2.95, Some(2.95)),
        ("GNMT-8", 2, B, "16", 1.0, Some(1.0)),
        ("AWD-LM", 1, A, "straight", 4.25, Some(4.25)),
        ("S2VT", 4, ClusterPreset::C, "2-1-1", 3.01, Some(3.01)),
    ]
}

/// Run the whole table. `n_mbs` controls simulation length per cell
/// (64 is plenty for steady state).
pub fn run(n_mbs: u64) -> Table1 {
    let mut rows = Vec::new();
    for (model_name, servers, cluster, paper_config, paper_epoch, paper_tta) in paper_rows() {
        let model = model_by_name(model_name);
        let topo = cluster.with_servers(servers);
        let costs = model.costs(&topo.device, model.default_batch, Precision::Fp32);
        let dp_sps = dp_throughput(&costs, &topo);
        let (config, sim) = best_plan(&model, &topo, n_mbs);
        // If the chosen pipeline is no better than DP, PipeDream deploys DP.
        let (label, pd_sps) = if sim.samples_per_sec <= dp_sps || config.is_data_parallel() {
            (format!("{}", topo.total_workers()), dp_sps)
        } else {
            (config.label(), sim.samples_per_sec)
        };
        let epoch_speedup = pd_sps / dp_sps;
        // Weight stashing needs the same epochs as BSP (Figure 11), so the
        // TTA speedup equals the epoch speedup for models with an accuracy
        // target.
        let tta_speedup = task_for(model_name).map(|t| {
            let ratio = t
                .epoch_ratio(Mode::WeightStashing)
                .expect("stashing converges");
            epoch_speedup / ratio
        });
        rows.push(Row {
            model: model_name.to_string(),
            setup: format!("{servers}x{} ({})", topo.arity(1), cluster_letter(cluster)),
            config: label,
            paper_config,
            epoch_speedup,
            paper_epoch_speedup: paper_epoch,
            tta_speedup,
            paper_tta_speedup: paper_tta,
        });
    }
    Table1 { rows }
}

fn cluster_letter(c: ClusterPreset) -> &'static str {
    match c {
        ClusterPreset::A => "A",
        ClusterPreset::B => "B",
        ClusterPreset::C => "C",
    }
}

impl Table1 {
    /// Find a row by model and setup substring.
    pub fn row(&self, model: &str, setup_contains: &str) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.model == model && r.setup.contains(setup_contains))
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: PipeDream speedup over data parallelism\n")?;
        let header = [
            "model",
            "setup",
            "config",
            "(paper)",
            "epoch speedup",
            "(paper)",
            "TTA speedup",
            "(paper)",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.setup.clone(),
                    r.config.clone(),
                    r.paper_config.to_string(),
                    format!("{:.2}x", r.epoch_speedup),
                    format!("{:.2}x", r.paper_epoch_speedup),
                    r.tta_speedup
                        .map(|v| format!("{v:.2}x"))
                        .unwrap_or_else(|| "N/A".into()),
                    r.paper_tta_speedup
                        .map(|v| format!("{v:.2}x"))
                        .unwrap_or_else(|| "N/A".into()),
                ]
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_paper() {
        let t = run(48);
        // ResNet-50: DP wins on both clusters (speedup 1×, config "16").
        for setup in ["4x4 (A)", "2x8 (B)"] {
            let r = t.row("ResNet-50", setup).unwrap();
            assert_eq!(r.config, "16", "{setup}");
            assert!((r.epoch_speedup - 1.0).abs() < 1e-9);
        }
        // VGG-16 on Cluster-A: a non-DP config wins by a wide margin.
        let vgg = t.row("VGG-16", "4x4").unwrap();
        assert_ne!(vgg.config, "16");
        assert!(vgg.epoch_speedup > 2.0, "{}", vgg.epoch_speedup);
        // AWD-LM on one Cluster-A server: pipeline wins.
        let lm = t.row("AWD-LM", "1x4").unwrap();
        assert!(lm.epoch_speedup > 1.5, "{}", lm.epoch_speedup);
        // GNMT-16 on 4x4 (A): pipeline wins.
        let g = t.row("GNMT-16", "4x4").unwrap();
        assert!(g.epoch_speedup > 1.5, "{}", g.epoch_speedup);
        // TTA speedup equals epoch speedup wherever defined (stashing has
        // BSP-equal statistical efficiency).
        for r in &t.rows {
            if let Some(tta) = r.tta_speedup {
                assert!((tta - r.epoch_speedup).abs() < 1e-9, "{}", r.model);
            }
        }
    }
}
