//! Offline stand-in for `proptest`.
//!
//! Implements the API surface this workspace uses — the `proptest!` macro
//! with `#![proptest_config(...)]`, `Strategy` + `prop_map`, range and
//! tuple strategies, `collection::vec`, `any::<T>()`, and
//! `prop_assert!`/`prop_assert_eq!` — over a deterministic per-test RNG.
//! Unlike real proptest there is no shrinking: a failure reports the case
//! number, and cases are reproducible because the seed is derived from the
//! test's module path and name.

pub mod test_runner {
    //! Configuration, errors, and the deterministic test RNG.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed `prop_assert!`-style check.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic generator: SplitMix64 streams keyed by test identity
    /// and case index, so every run draws identical inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test identified by `test_id`
        /// (typically `module_path!() :: test_name`).
        pub fn deterministic(test_id: &str, case: u32) -> Self {
            // FNV-1a over the id, mixed with the case number.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_id.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in `[lo, hi]`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            debug_assert!(lo <= hi);
            let span = (hi - lo) as u64 + 1;
            lo + (self.next_u64() % span) as usize
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy over a type's full value range.
    pub struct Any<T>(PhantomData<T>);

    /// Uniform strategy over all values of `T`.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases deterministically.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "{} failed on case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a
/// message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}",
            stringify!($left),
            stringify!($right)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x", 0);
        let mut b = TestRng::deterministic("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in -2.0f64..2.0, k in 1u64..=5) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..=5).contains(&k));
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0u32..100, 2..=4).prop_map(|v| v.len())) {
            prop_assert!((2..=4).contains(&v));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u8..10, 0u8..10), s in any::<u64>()) {
            let _ = s;
            prop_assert!(a < 10 && b < 10);
        }
    }
}
