//! Statistical-efficiency models: how training *metric* evolves with
//! *epochs* under each execution mode.
//!
//! The paper's time-to-accuracy results decompose into
//! `TTA = epochs-to-target × seconds-per-epoch`. The simulator
//! (`pipedream-sim`) produces seconds-per-epoch; this crate produces
//! epochs-to-target. It is a **descriptive model calibrated to the paper's
//! observations**, not a claim about optimization theory:
//!
//! * BSP data parallelism and PipeDream's weight stashing need the *same*
//!   number of epochs (Figure 11, and the equal Epoch/TTA speedup columns
//!   of Table 1) — bounded staleness of `n−1` steps does not hurt the
//!   models evaluated;
//! * vertical sync matches weight stashing (§3.3: semantically between
//!   single-worker SGD and BSP);
//! * ASP converges far slower and plateaus below target (§5.2: 7.4× longer
//!   to reach 48% accuracy on VGG-16);
//! * naive pipelining without weight stashing computes invalid gradients
//!   and diverges (§3.3);
//! * very large minibatches without LARS plateau below target, and even
//!   with LARS fail beyond ~2k (Figure 13: 1024 converges, 4096/8192 fail).
//!
//! Metric curves are saturating exponentials
//! `metric(e) = asymptote + (initial − asymptote) · exp(−e/τ)`, which fit
//! published accuracy-vs-epoch curves of the paper's models well enough to
//! reproduce every *shape* the paper plots (Figures 10, 11, 13).
//!
//! The mechanistic counterpart of these claims — that weight stashing
//! yields bit-exact per-minibatch gradients while naive pipelining does
//! not — is demonstrated for real in `pipedream-runtime`'s tests, on real
//! (small) models.

use serde::{Deserialize, Serialize};

/// Whether larger or smaller metric values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Accuracy-like metrics (top-1, BLEU, METEOR).
    HigherBetter,
    /// Loss-like metrics (perplexity).
    LowerBetter,
}

/// A saturating metric-vs-epoch curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Curve {
    /// Metric value at epoch 0.
    pub initial: f64,
    /// Metric value the run converges toward.
    pub asymptote: f64,
    /// Time constant in epochs.
    pub tau: f64,
    /// Metric direction.
    pub direction: Direction,
}

impl Curve {
    /// Metric value after `epochs` epochs.
    pub fn metric_at(&self, epochs: f64) -> f64 {
        self.asymptote + (self.initial - self.asymptote) * (-epochs / self.tau).exp()
    }

    /// Epochs needed to reach `target`, or `None` if the asymptote never
    /// gets there.
    pub fn epochs_to(&self, target: f64) -> Option<f64> {
        let reaches = match self.direction {
            Direction::HigherBetter => self.asymptote > target,
            Direction::LowerBetter => self.asymptote < target,
        };
        if !reaches {
            return None;
        }
        let frac = (target - self.asymptote) / (self.initial - self.asymptote);
        if frac <= 0.0 {
            return Some(0.0);
        }
        Some(-self.tau * frac.ln())
    }

    /// Sample the curve at `points` evenly spaced epochs in `[0, epochs]`.
    pub fn sample(&self, epochs: f64, points: usize) -> Vec<(f64, f64)> {
        (0..=points)
            .map(|i| {
                let e = epochs * i as f64 / points as f64;
                (e, self.metric_at(e))
            })
            .collect()
    }
}

/// Execution modes whose statistical efficiency the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Mode {
    /// Bulk-synchronous data parallelism (the reference).
    Bsp,
    /// PipeDream's default semantics: 1F1B with weight stashing.
    WeightStashing,
    /// Weight stashing + vertical sync.
    VerticalSync,
    /// Asynchronous parallel training.
    Asp,
    /// Pipelining without weight stashing: invalid gradients.
    NaivePipeline,
    /// Large global minibatch of the given size, with or without LARS
    /// (Figure 13; base global batch 512).
    LargeBatch {
        /// Global minibatch size.
        global_batch: usize,
        /// Whether Layer-wise Adaptive Rate Scaling is used.
        lars: bool,
    },
}

impl Mode {
    /// Transform the BSP reference curve into this mode's curve.
    pub fn apply(&self, base: Curve) -> Curve {
        let toward_initial = |c: Curve, frac: f64| Curve {
            asymptote: c.asymptote + frac * (c.initial - c.asymptote),
            ..c
        };
        match *self {
            // Figure 11: indistinguishable epochs-to-target from BSP.
            Mode::Bsp | Mode::WeightStashing | Mode::VerticalSync => base,
            // §5.2: much slower and plateaus well below target (VGG-16
            // reference: 71% → ≈ 49%, 7.4× slower to 48%).
            Mode::Asp => toward_initial(
                Curve {
                    tau: base.tau * 4.0,
                    ..base
                },
                0.30,
            ),
            // §3.3: not a valid gradient of the loss for any weights.
            Mode::NaivePipeline => toward_initial(base, 0.75),
            Mode::LargeBatch { global_batch, lars } => {
                let limit = if lars { 2048 } else { 512 };
                if global_batch <= limit {
                    // Converges; slightly slower per epoch past the base
                    // batch (fewer updates per epoch).
                    let slowdown = 1.0 + 0.1 * (global_batch as f64 / 512.0).log2().max(0.0);
                    Curve {
                        tau: base.tau * slowdown,
                        ..base
                    }
                } else {
                    // Fails to reach target (Figure 13: 4096 and 8192).
                    let over = (global_batch as f64 / limit as f64).log2();
                    toward_initial(base, 0.05 + 0.05 * over)
                }
            }
        }
    }
}

/// A training task: reference curve plus the paper's target threshold.
///
/// ```
/// use pipedream_convergence::{vgg16, Mode};
///
/// let task = vgg16();
/// // Weight stashing needs exactly as many epochs as BSP (Figure 11)…
/// assert_eq!(task.epoch_ratio(Mode::WeightStashing), Some(1.0));
/// // …while ASP never reaches the 68% target (§5.2).
/// assert!(task.epochs_to_target(Mode::Asp).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Model name (matches `pipedream_model::zoo`).
    pub model: &'static str,
    /// Metric name for display.
    pub metric: &'static str,
    /// The paper's target threshold (Table 1).
    pub target: f64,
    /// Reference (BSP) curve.
    pub curve: Curve,
}

impl Task {
    /// Epochs for `mode` to reach the paper's target threshold.
    pub fn epochs_to_target(&self, mode: Mode) -> Option<f64> {
        mode.apply(self.curve).epochs_to(self.target)
    }

    /// Relative number of epochs vs BSP (1.0 = same statistical
    /// efficiency); `None` if the mode never reaches target.
    pub fn epoch_ratio(&self, mode: Mode) -> Option<f64> {
        let bsp = self.epochs_to_target(Mode::Bsp)?;
        Some(self.epochs_to_target(mode)? / bsp)
    }
}

/// VGG-16 on ImageNet: 68% top-1 target, ≈ 60 epochs under BSP.
pub fn vgg16() -> Task {
    Task {
        model: "VGG-16",
        metric: "top-1 accuracy",
        target: 0.68,
        curve: Curve {
            initial: 0.0,
            asymptote: 0.71,
            tau: 19.0,
            direction: Direction::HigherBetter,
        },
    }
}

/// ResNet-50 on ImageNet: 75.9% top-1 target, ≈ 90 epochs under BSP.
pub fn resnet50() -> Task {
    Task {
        model: "ResNet-50",
        metric: "top-1 accuracy",
        target: 0.759,
        curve: Curve {
            initial: 0.0,
            asymptote: 0.768,
            tau: 20.5,
            direction: Direction::HigherBetter,
        },
    }
}

/// GNMT (8 or 16 layers) on WMT16 En→De: 21.8 BLEU target.
pub fn gnmt() -> Task {
    Task {
        model: "GNMT",
        metric: "BLEU",
        target: 21.8,
        curve: Curve {
            initial: 0.0,
            asymptote: 22.9,
            tau: 2.0,
            direction: Direction::HigherBetter,
        },
    }
}

/// AWD-LM on Penn Treebank: validation perplexity 98 target.
pub fn awd_lm() -> Task {
    Task {
        model: "AWD-LM",
        metric: "perplexity",
        target: 98.0,
        curve: Curve {
            initial: 600.0,
            asymptote: 92.0,
            tau: 12.0,
            direction: Direction::LowerBetter,
        },
    }
}

/// S2VT on MSVD: METEOR 0.294 target.
pub fn s2vt() -> Task {
    Task {
        model: "S2VT",
        metric: "METEOR",
        target: 0.294,
        curve: Curve {
            initial: 0.0,
            asymptote: 0.31,
            tau: 5.0,
            direction: Direction::HigherBetter,
        },
    }
}

/// Time-to-accuracy composition: `TTA = epochs-to-target × samples-per-epoch
/// / throughput` — the quantity Table 1 and Figures 10/13 report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeToAccuracy {
    /// Epochs needed to reach the target.
    pub epochs: f64,
    /// Seconds per epoch at the given throughput.
    pub seconds_per_epoch: f64,
}

impl TimeToAccuracy {
    /// Compose a task + execution mode with a system throughput
    /// (samples/second) over a dataset of `samples_per_epoch`. `None` when
    /// the mode never reaches the target.
    pub fn compose(
        task: &Task,
        mode: Mode,
        samples_per_sec: f64,
        samples_per_epoch: f64,
    ) -> Option<TimeToAccuracy> {
        assert!(samples_per_sec > 0.0 && samples_per_epoch > 0.0);
        let epochs = task.epochs_to_target(mode)?;
        Some(TimeToAccuracy {
            epochs,
            seconds_per_epoch: samples_per_epoch / samples_per_sec,
        })
    }

    /// Total seconds to target.
    pub fn seconds(&self) -> f64 {
        self.epochs * self.seconds_per_epoch
    }

    /// Total hours to target.
    pub fn hours(&self) -> f64 {
        self.seconds() / 3600.0
    }

    /// TTA speedup of `self` relative to `other` (>1 = self faster).
    pub fn speedup_over(&self, other: &TimeToAccuracy) -> f64 {
        other.seconds() / self.seconds()
    }
}

/// Task for a zoo model name, if it has an accuracy target (AlexNet is
/// throughput-only in the paper).
pub fn task_for(model: &str) -> Option<Task> {
    match model {
        "VGG-16" => Some(vgg16()),
        "ResNet-50" => Some(resnet50()),
        "GNMT-8" | "GNMT-16" | "GNMT" => Some(gnmt()),
        "AWD-LM" => Some(awd_lm()),
        "S2VT" => Some(s2vt()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_toward_asymptote() {
        let t = vgg16();
        let a1 = t.curve.metric_at(1.0);
        let a10 = t.curve.metric_at(10.0);
        let a100 = t.curve.metric_at(100.0);
        assert!(a1 < a10 && a10 < a100);
        assert!(a100 <= t.curve.asymptote);
    }

    #[test]
    fn perplexity_decreases() {
        let t = awd_lm();
        assert!(t.curve.metric_at(5.0) > t.curve.metric_at(20.0));
        assert!(t.curve.metric_at(100.0) > t.curve.asymptote);
    }

    #[test]
    fn epochs_to_target_inverts_metric_at() {
        for task in [vgg16(), resnet50(), gnmt(), awd_lm(), s2vt()] {
            let e = task.epochs_to_target(Mode::Bsp).unwrap();
            let m = task.curve.metric_at(e);
            assert!(
                (m - task.target).abs() / task.target < 1e-9,
                "{}: metric {m} target {}",
                task.model,
                task.target
            );
        }
    }

    #[test]
    fn stashing_matches_bsp_epochs() {
        // Figure 11 / Table 1: same number of epochs as data parallelism.
        for task in [vgg16(), gnmt()] {
            assert!((task.epoch_ratio(Mode::WeightStashing).unwrap() - 1.0).abs() < 1e-12);
            assert!((task.epoch_ratio(Mode::VerticalSync).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn vgg_takes_about_60_epochs() {
        let e = vgg16().epochs_to_target(Mode::Bsp).unwrap();
        assert!(e > 40.0 && e < 80.0, "{e}");
    }

    #[test]
    fn asp_plateaus_below_target_near_48_percent() {
        // §5.2: ASP never reaches 68% and takes 7.4× longer to 48%.
        let t = vgg16();
        assert!(t.epochs_to_target(Mode::Asp).is_none());
        let asp = Mode::Asp.apply(t.curve);
        assert!(
            asp.asymptote > 0.48 && asp.asymptote < 0.55,
            "{}",
            asp.asymptote
        );
        let bsp_48 = t.curve.epochs_to(0.48).unwrap();
        let asp_48 = asp.epochs_to(0.48).unwrap();
        let ratio = asp_48 / bsp_48;
        assert!(ratio > 4.0, "ASP slowdown to 48%: {ratio}");
    }

    #[test]
    fn naive_pipelining_diverges() {
        for task in [vgg16(), resnet50(), gnmt(), awd_lm()] {
            assert!(
                task.epochs_to_target(Mode::NaivePipeline).is_none(),
                "{} should not converge without weight stashing",
                task.model
            );
        }
    }

    #[test]
    fn figure13_large_batch_behaviour() {
        let t = vgg16();
        let b1024 = Mode::LargeBatch {
            global_batch: 1024,
            lars: true,
        };
        let b4096 = Mode::LargeBatch {
            global_batch: 4096,
            lars: true,
        };
        let b8192 = Mode::LargeBatch {
            global_batch: 8192,
            lars: true,
        };
        assert!(t.epochs_to_target(b1024).is_some(), "1024+LARS converges");
        assert!(t.epochs_to_target(b4096).is_none(), "4096 fails");
        assert!(t.epochs_to_target(b8192).is_none(), "8192 fails");
        // Without LARS even 1024 fails.
        assert!(t
            .epochs_to_target(Mode::LargeBatch {
                global_batch: 1024,
                lars: false
            })
            .is_none());
    }

    #[test]
    fn sample_is_evenly_spaced() {
        let pts = vgg16().curve.sample(10.0, 5);
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[5].0, 10.0);
    }

    #[test]
    fn tta_composition_matches_paper_identity() {
        // Same epochs, 2× throughput ⇒ 2× TTA speedup: why Table 1's epoch
        // and TTA columns agree for weight stashing.
        let task = vgg16();
        let slow = TimeToAccuracy::compose(&task, Mode::Bsp, 500.0, 1.28e6).unwrap();
        let fast = TimeToAccuracy::compose(&task, Mode::WeightStashing, 1000.0, 1.28e6).unwrap();
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-9);
        assert!((slow.epochs - fast.epochs).abs() < 1e-12);
        assert!(slow.hours() > fast.hours());
        // ASP never composes to a finite TTA.
        assert!(TimeToAccuracy::compose(&task, Mode::Asp, 1000.0, 1.28e6).is_none());
    }

    #[test]
    fn task_lookup_covers_zoo_names() {
        for name in ["VGG-16", "ResNet-50", "GNMT-8", "GNMT-16", "AWD-LM", "S2VT"] {
            assert!(task_for(name).is_some(), "{name}");
        }
        assert!(task_for("AlexNet").is_none());
    }
}
