//! The introduction's forward-looking claim: "rapid increases in GPU
//! compute capacity over time will further shift the bottleneck of training
//! towards communication for all models."
//!
//! Sweep a hypothetical device speed multiplier (1× = today's V100) with
//! the network held fixed, and watch (a) DP's communication stall fraction
//! climb and (b) PipeDream's advantage grow.

use crate::util::{best_plan, format_table};
use pipedream_hw::{Device, Level, Precision, ServerKind, Topology};
use pipedream_model::zoo;
use pipedream_sim::simulate_dp;
use std::fmt;

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Device speed multiplier over today's V100.
    pub speedup: f64,
    /// DP stall fraction at 16 GPUs.
    pub dp_stall: f64,
    /// PipeDream throughput advantage over DP.
    pub pipedream_advantage: f64,
}

/// The sweep (VGG-16, 4 × 4-GPU servers, network held fixed).
#[derive(Debug, Clone)]
pub struct Trend {
    /// Points at increasing device speed.
    pub points: Vec<Point>,
}

/// Run the sweep.
pub fn run() -> Trend {
    let model = zoo::vgg16();
    let base_kind = ServerKind::PcieV100x4;
    let points = [1.0f64, 2.0, 4.0, 8.0]
        .into_iter()
        .map(|speedup| {
            let device = Device {
                name: format!("V100×{speedup}"),
                peak_flops: Device::v100().peak_flops * speedup,
                ..Device::v100()
            };
            let topo = Topology::new(
                device.clone(),
                vec![
                    Level {
                        name: "intra".into(),
                        arity: 4,
                        link: base_kind.intra_link(),
                    },
                    Level {
                        name: "inter".into(),
                        arity: 4,
                        link: base_kind.inter_link(),
                    },
                ],
            );
            let costs = model.costs(&device, model.default_batch, Precision::Fp32);
            let dp = simulate_dp(&costs, &topo, 16);
            let (_, pd) = best_plan(&model, &topo, 32);
            Point {
                speedup,
                dp_stall: dp.stall_fraction,
                pipedream_advantage: (pd.samples_per_sec / dp.samples_per_sec).max(1.0),
            }
        })
        .collect();
    Trend { points }
}

impl fmt::Display for Trend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Intro claim: faster GPUs shift the bottleneck to communication\n\
             (VGG-16, 16 GPUs, network fixed at Cluster-A parameters)\n"
        )?;
        let header = ["device speed", "DP comm stall", "PipeDream advantage"];
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}x V100", p.speedup),
                    format!("{:.0}%", p.dp_stall * 100.0),
                    format!("{:.2}x", p.pipedream_advantage),
                ]
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn faster_devices_raise_stall_and_pipedream_advantage() {
        let t = super::run();
        assert_eq!(t.points.len(), 4);
        for w in t.points.windows(2) {
            assert!(
                w[1].dp_stall >= w[0].dp_stall - 1e-9,
                "stall must not fall as devices speed up: {} vs {}",
                w[1].dp_stall,
                w[0].dp_stall
            );
        }
        let first = &t.points[0];
        let last = &t.points[3];
        assert!(last.dp_stall > first.dp_stall + 0.05);
        assert!(
            last.pipedream_advantage > first.pipedream_advantage,
            "{} vs {}",
            last.pipedream_advantage,
            first.pipedream_advantage
        );
    }
}
