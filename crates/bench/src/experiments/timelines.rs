//! Figures 2, 3, 4, 5 and 8: schedule timelines.
//!
//! Rendered in the paper's visual language: one row per worker, digits are
//! forward passes (minibatch id mod 10), `#` backward passes, `~`
//! communication, `.` idle.

use pipedream_core::schedule::Schedule;
use pipedream_core::PipelineConfig;
use pipedream_hw::{Device, LinkModel, Precision, ServerKind, Topology};
use pipedream_model::zoo;
use pipedream_sim::{render_timeline, simulate_pipeline, SimResult};
use std::fmt;

/// A rendered timeline figure.
#[derive(Debug, Clone)]
pub struct TimelineFig {
    /// Figure title.
    pub title: String,
    /// Rendered ASCII timeline.
    pub rendered: String,
    /// Underlying simulation result.
    pub sim: SimResult,
}

impl TimelineFig {
    /// SVG rendering of the compute timeline (paper-figure style).
    pub fn to_svg(&self) -> String {
        pipedream_sim::render_svg(&self.sim.timeline, 900)
    }
}

impl fmt::Display for TimelineFig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}\n{}", self.title, self.rendered)?;
        writeln!(
            f,
            "mean utilization {:.0}%, steady {:.4} s/minibatch",
            self.sim.mean_utilization * 100.0,
            self.sim.per_minibatch_s
        )
    }
}

/// Four identical stages on four fast-linked workers — the paper's
/// illustrative setup (backward drawn 2× as long as forward).
fn four_stage_setup() -> (pipedream_model::ModelProfile, Topology, PipelineConfig) {
    let profile = zoo::uniform(4, 2e9, 10_000, 10_000);
    let topo = Topology::flat(Device::v100(), 4, LinkModel::new(1e14, 0.0), "fig");
    let config = PipelineConfig::straight(4, &[0, 1, 2]);
    (profile, topo, config)
}

fn render(
    title: &str,
    schedule: &Schedule,
    profile: &pipedream_model::ModelProfile,
    topo: &Topology,
    cols: usize,
) -> TimelineFig {
    let costs = profile.costs(&topo.device, profile.default_batch, Precision::Fp32);
    let sim = simulate_pipeline(&costs, topo, schedule);
    TimelineFig {
        title: title.to_string(),
        rendered: render_timeline(&sim.timeline, cols),
        sim,
    }
}

/// Figure 2: model-parallel training — at most one worker active.
pub fn fig2() -> TimelineFig {
    let (profile, topo, config) = four_stage_setup();
    let schedule = Schedule::model_parallel(&config, 4);
    render(
        "Figure 2: model parallelism, 4 workers, ≤1 active at a time",
        &schedule,
        &profile,
        &topo,
        72,
    )
}

/// Figure 3: GPipe's microbatch schedule with pipeline flushes.
pub fn fig3() -> TimelineFig {
    let (profile, topo, config) = four_stage_setup();
    let schedule = Schedule::gpipe(&config, 8, 4);
    render(
        "Figure 3: GPipe (m = 4) — flushes leave idle time between groups",
        &schedule,
        &profile,
        &topo,
        72,
    )
}

/// Figure 4: PipeDream's 1F1B — startup then a stall-free steady state.
pub fn fig4() -> TimelineFig {
    let (profile, topo, config) = four_stage_setup();
    let schedule = Schedule::one_f_one_b(&config, 12);
    render(
        "Figure 4: PipeDream 1F1B — startup admits NOAM=4, then steady state",
        &schedule,
        &profile,
        &topo,
        72,
    )
}

/// Figure 5: compute/communication overlap at one worker of a realistic
/// VGG-16 pipeline (compute row + comm row for worker 2 of 4).
pub fn fig5() -> TimelineFig {
    let profile = zoo::vgg16();
    let topo = ServerKind::PcieV100x4.cluster(1);
    let costs = profile.costs(&topo.device, profile.default_batch, Precision::Fp32);
    // A straight 4-stage split of VGG-16 (planner-balanced boundaries).
    let planner = pipedream_core::Planner::new(&profile, &topo);
    let boundaries = planner.balanced_boundaries(4).expect("vgg splits 4 ways");
    let config = PipelineConfig::straight(16, &boundaries);
    let schedule = Schedule::one_f_one_b(&config, 12);
    let sim = simulate_pipeline(&costs, &topo, &schedule);
    let mut rendered = String::new();
    rendered.push_str("compute:\n");
    rendered.push_str(&render_timeline(&sim.timeline, 72));
    rendered.push_str("communication (same rows, ~ = transfer in flight):\n");
    rendered.push_str(&render_timeline(&sim.comm_timeline, 72));
    TimelineFig {
        title: "Figure 5: computation overlaps activation/gradient communication".into(),
        rendered,
        sim,
    }
}

/// Figure 8: 1F1B-RR on a 2-1 configuration — the first stage does twice
/// the work and is replicated twice; round-robin routing keeps all three
/// workers busy.
pub fn fig8() -> TimelineFig {
    let mut profile = zoo::uniform(2, 2e9, 10_000, 10_000);
    profile.layers[1].flops_fwd = 1e9;
    let topo = Topology::flat(Device::v100(), 3, LinkModel::new(1e14, 0.0), "fig8");
    let config = PipelineConfig::from_counts(&[(1, 2), (1, 1)]);
    let schedule = Schedule::one_f_one_b(&config, 12);
    render(
        "Figure 8: 1F1B-RR, 2-1 configuration — even minibatches to worker 0, odd to worker 1",
        &schedule,
        &profile,
        &topo,
        72,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_low_utilization() {
        let f = fig2();
        assert!(f.sim.mean_utilization < 0.35, "{}", f.sim.mean_utilization);
    }

    #[test]
    fn fig4_beats_fig3_beats_fig2() {
        let mp = fig2().sim.per_minibatch_s;
        let gp = fig3().sim.per_minibatch_s;
        let pd = fig4().sim.per_minibatch_s;
        assert!(pd < gp, "1F1B {pd} vs GPipe {gp}");
        assert!(gp < mp, "GPipe {gp} vs MP {mp}");
    }

    #[test]
    fn fig8_keeps_all_workers_busy() {
        let f = fig8();
        assert!(f.sim.mean_utilization > 0.75, "{}", f.sim.mean_utilization);
    }

    #[test]
    fn renders_are_nonempty() {
        for f in [fig2(), fig3(), fig4(), fig5(), fig8()] {
            assert!(f.rendered.lines().count() >= 3, "{}", f.title);
        }
    }
}
