//! A from-scratch dense tensor and neural-network library.
//!
//! The PipeDream paper trains real DNNs on GPUs through PyTorch. This crate
//! is the substitute substrate: plain-`f32` tensors, layers with explicit
//! forward/backward passes, SGD/Adam optimizers, losses, and synthetic
//! datasets — enough to *actually train* small models through the
//! pipeline-parallel runtime (`pipedream-runtime`) and demonstrate the
//! paper's §3.3 claims about gradient validity under weight stashing.
//!
//! Design notes:
//!
//! * **Per-minibatch activation slots.** Pipelined training keeps several
//!   minibatches in flight per stage, so a layer's forward pass stores its
//!   cached activations under a caller-supplied [`Slot`] (minibatch id) and
//!   the backward pass for that slot pops them. This mirrors PipeDream's
//!   "intermediate state" management (§4): activation stashes live until the
//!   corresponding backward pass completes.
//! * **Explicit backward.** There is no general autograd tape; every layer
//!   implements its own gradient. Finite-difference tests in each module
//!   keep the math honest.
//! * **No `unsafe`**, no external BLAS: matrix multiplies go through the
//!   [`gemm`] module's register-blocked tiled kernel (packed panels, an
//!   `MR×NR` micro-kernel the compiler can autovectorize), with the seed
//!   scalar kernel retained as the reference side of a differential test
//!   suite. Scratch buffers come from a thread-local size-classed
//!   [`pool`], so steady-state training does not allocate per minibatch.

// Indexed loops over matrix rows/columns are the clearest notation for the
// hand-written gradient math in this crate; iterator rewrites obscure it.
#![allow(clippy::needless_range_loop)]

pub mod data;
pub mod gemm;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod pool;
pub mod tensor;

pub use layers::{Layer, Param, Sequential, Slot};
pub use loss::{mse_loss, softmax_cross_entropy, LossOutput};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
