//! Learned scaling layer.

use super::{Layer, Param, Slot};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// Per-feature learned scale `y = x ⊙ γ` over `[batch, features]` inputs —
/// a lightweight stand-in for normalization layers that keeps a small,
/// distinct parameter shape useful in stage-partitioning tests.
#[derive(Clone)]
pub struct Scale {
    gamma: Param,
    features: usize,
    saved_input: HashMap<Slot, Tensor>,
}

impl Scale {
    /// Scale layer initialized to the identity (γ = 1).
    pub fn new(features: usize) -> Self {
        Scale {
            gamma: Param::new("gamma", Tensor::full(&[features], 1.0)),
            features,
            saved_input: HashMap::new(),
        }
    }
}

impl Layer for Scale {
    fn name(&self) -> &str {
        "scale"
    }

    fn forward(&mut self, x: &Tensor, slot: Slot) -> Tensor {
        assert_eq!(x.cols(), self.features, "scale: feature mismatch");
        let g = self.gamma.value.data();
        let mut y = x.reshape(&[x.rows(), self.features]);
        for r in 0..y.rows() {
            for c in 0..self.features {
                *y.at_mut(r, c) *= g[c];
            }
        }
        self.saved_input
            .insert(slot, x.reshape(&[x.rows(), self.features]));
        y
    }

    fn backward(&mut self, grad_out: &Tensor, slot: Slot) -> Tensor {
        let x = self
            .saved_input
            .remove(&slot)
            .unwrap_or_else(|| panic!("scale: no saved input for slot {slot}"));
        let gamma = &mut self.gamma;
        let g = gamma.value.data();
        let gg = gamma.grad.data_mut();
        let mut dx = grad_out.clone();
        for r in 0..x.rows() {
            for c in 0..self.features {
                gg[c] += grad_out.at(r, c) * x.at(r, c);
                *dx.at_mut(r, c) = grad_out.at(r, c) * g[c];
            }
        }
        x.recycle();
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> f64 {
        input_shape.iter().product::<usize>() as f64
    }

    fn clear_slots(&mut self) {
        self.saved_input.clear();
    }

    fn clear_slot(&mut self, slot: Slot) {
        self.saved_input.remove(&slot);
    }

    fn cached_bytes(&self) -> u64 {
        self.saved_input.values().map(|t| t.len() as u64 * 4).sum()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;

    #[test]
    fn identity_at_init() {
        let mut s = Scale::new(3);
        let x = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(s.forward(&x, 0), x);
    }

    #[test]
    fn gradcheck() {
        check_layer_gradients(&mut Scale::new(4), &[3, 4], 23);
    }
}
