//! Fault tolerance for the pipeline runtime (paper §4).
//!
//! PipeDream's recovery story: every stage checkpoints its parameters
//! locally at epoch boundaries, so "when a stage fails, all stages restart
//! from the last successfully created checkpoint" and at most one epoch of
//! work is redone. This crate makes that claim testable:
//!
//! * [`plan::FaultPlan`] — a deterministic fault-injection plan parsed
//!   from a compact spec (`kill:stage=1,mb=37`, `delay:…`, `drop:…`,
//!   `corrupt:…`) and installed into the runtime's workers as a
//!   [`pipedream_runtime::fault::FaultHook`];
//! * [`supervisor`] — runs training under a plan, observes the typed
//!   worker failures the runtime surfaces, restarts from the last
//!   complete checkpoint with the existing resume machinery, and reports
//!   a [`pipedream_runtime::report::RecoveryRecord`] quantifying
//!   detection latency, redone work, and end-quality parity;
//! * [`straggler::DelayStraggler`] — a *persistent* slowdown (every
//!   forward send from one stage delayed) for exercising the live
//!   drift detector and replan advisor, where a one-shot fault would
//!   vanish between profiler sample windows.

pub mod plan;
pub mod straggler;
pub mod supervisor;

pub use plan::{Fault, FaultPlan};
pub use straggler::DelayStraggler;
pub use supervisor::{resume_training, train_with_recovery, SupervisorError};
