//! End-to-end tests of the CLI: parse real argument vectors and run them,
//! including JSON round trips through files.

use pipedream_cli::{parse, run, Command};

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn run_line(line: &str) -> Result<String, String> {
    let cmd = parse(&argv(line)).map_err(|e| e.to_string())?;
    run(cmd)
}

#[test]
fn plan_simulate_dp_all_run() {
    let plan = run_line("plan --model vgg16 --cluster A --servers 4 --flat").unwrap();
    assert!(plan.contains("15-1"));
    let sim = run_line("simulate --model vgg16 --cluster A --servers 4 --config 15-1").unwrap();
    assert!(sim.contains("throughput"));
    let dp = run_line("dp --model vgg16 --cluster A --servers 4").unwrap();
    assert!(dp.contains("stall"));
}

#[test]
fn export_then_plan_from_files() {
    let dir = std::env::temp_dir().join(format!("pd-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    let topo_path = dir.join("topo.json");
    run_line(&format!(
        "export --model gnmt8 --out {}",
        model_path.display()
    ))
    .unwrap();
    run_line(&format!(
        "export --cluster B --servers 2 --out {}",
        topo_path.display()
    ))
    .unwrap();
    // Plan using both files.
    let out = run_line(&format!(
        "plan --model @{} --topology @{}",
        model_path.display(),
        topo_path.display()
    ))
    .unwrap();
    assert!(out.contains("GNMT-8"), "{out}");
    assert!(out.contains("16 workers"), "{out}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn json_outputs_parse() {
    for line in [
        "plan --model resnet50 --cluster A --servers 1 --json",
        "simulate --model resnet50 --cluster A --servers 1 --config dp --minibatches 8 --json",
        "dp --model resnet50 --cluster A --servers 1 --json",
    ] {
        let out = run_line(line).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap_or_else(|e| {
            panic!("`{line}` produced invalid JSON: {e}");
        });
        assert!(v.is_object(), "{line}");
    }
}

#[test]
fn train_cli_end_to_end() {
    let out = run_line("train --stages 2 --epochs 3 --batch 16 --lr 0.05 --seed 7").unwrap();
    assert!(out.contains("epoch  2"), "{out}");
    assert!(out.contains("held-out accuracy"));
}

#[test]
fn help_is_the_default_and_errors_are_friendly() {
    assert!(matches!(parse(&[]).unwrap(), Command::Help));
    let err = run_line("simulate --model vgg16 --config 3-3").unwrap_err();
    assert!(err.contains("workers"), "{err}");
    let err = parse(&argv("plan --cluster A")).unwrap_err();
    assert!(err.to_string().contains("--model"));
}
