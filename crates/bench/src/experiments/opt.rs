//! §5.5 "Optimizer": the partitioner generates configurations for every
//! model/cluster pair in well under the paper's 8-second bound.

use crate::util::format_table;
use pipedream_core::Planner;
use pipedream_hw::ClusterPreset;
use pipedream_model::zoo;
use std::fmt;
use std::time::Instant;

/// One (model, cluster) planning measurement.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Cluster label.
    pub cluster: String,
    /// Chosen configuration.
    pub config: String,
    /// Hierarchical + flat planning time in seconds.
    pub seconds: f64,
}

/// All measurements.
#[derive(Debug, Clone)]
pub struct OptimizerRuntime {
    /// One row per pair.
    pub rows: Vec<Row>,
}

/// Run the planner over every model × cluster pair.
pub fn run() -> OptimizerRuntime {
    let clusters = [
        (ClusterPreset::A, 4usize),
        (ClusterPreset::B, 2),
        (ClusterPreset::C, 4),
    ];
    let mut rows = Vec::new();
    for model in zoo::all_models() {
        for (cluster, servers) in clusters {
            let topo = cluster.with_servers(servers);
            let t0 = Instant::now();
            let planner = Planner::new(&model, &topo);
            let plan = planner.try_plan().expect("hierarchical plan");
            let _flat = planner.try_plan_flat().expect("flat plan");
            rows.push(Row {
                model: model.name.clone(),
                cluster: format!("{servers}x{} ({})", topo.arity(1), cluster.name()),
                config: plan.config.label(),
                seconds: t0.elapsed().as_secs_f64(),
            });
        }
    }
    OptimizerRuntime { rows }
}

impl OptimizerRuntime {
    /// Slowest planning time observed.
    pub fn max_seconds(&self) -> f64 {
        self.rows.iter().map(|r| r.seconds).fold(0.0, f64::max)
    }
}

impl fmt::Display for OptimizerRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.5 optimizer runtime (paper bound: < 8 s per model/cluster)\n"
        )?;
        let header = ["model", "cluster", "config", "plan time"];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.cluster.clone(),
                    r.config.clone(),
                    format!("{:.3} s", r.seconds),
                ]
            })
            .collect();
        writeln!(f, "{}", format_table(&header, &rows))?;
        writeln!(f, "max: {:.3} s", self.max_seconds())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_plans_well_under_8_seconds() {
        let r = super::run();
        assert_eq!(r.rows.len(), 21);
        assert!(r.max_seconds() < 8.0, "max {:.3} s", r.max_seconds());
    }
}
