//! Token embedding layer.

use super::{Layer, Param, Slot};
use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Lookup table mapping integer token ids to dense vectors.
///
/// Input is `[batch, seq]` of token ids stored as `f32` (rounded to the
/// nearest integer); output is `[batch, seq, dim]`. The backward pass
/// scatter-adds output gradients into the rows that were looked up.
#[derive(Clone)]
pub struct Embedding {
    name: String,
    table: Param,
    vocab: usize,
    dim: usize,
    saved_ids: HashMap<Slot, Vec<usize>>,
}

impl Embedding {
    /// Normal(0, 0.1)-initialized embedding table.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            name: format!("embedding{vocab}x{dim}"),
            table: Param::new("table", init::normal(&[vocab, dim], 0.1, rng)),
            vocab,
            dim,
            saved_ids: HashMap::new(),
        }
    }
}

impl Layer for Embedding {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, slot: Slot) -> Tensor {
        let (b, t) = (x.shape()[0], x.shape().get(1).copied().unwrap_or(1));
        let ids: Vec<usize> = x
            .data()
            .iter()
            .map(|&v| {
                let id = v.round() as usize;
                assert!(id < self.vocab, "token id {id} ≥ vocab {}", self.vocab);
                id
            })
            .collect();
        let mut out = Tensor::zeros(&[b, t, self.dim]);
        let table = self.table.value.data();
        let od = out.data_mut();
        for (i, &id) in ids.iter().enumerate() {
            od[i * self.dim..(i + 1) * self.dim]
                .copy_from_slice(&table[id * self.dim..(id + 1) * self.dim]);
        }
        self.saved_ids.insert(slot, ids);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, slot: Slot) -> Tensor {
        let ids = self
            .saved_ids
            .remove(&slot)
            .unwrap_or_else(|| panic!("{}: no saved ids for slot {slot}", self.name));
        let gd = grad_out.data();
        let tg = self.table.grad.data_mut();
        for (i, &id) in ids.iter().enumerate() {
            for d in 0..self.dim {
                tg[id * self.dim + d] += gd[i * self.dim + d];
            }
        }
        // Token ids have no gradient.
        Tensor::zeros(&[ids.len()])
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let t = input_shape.get(1).copied().unwrap_or(1);
        vec![input_shape[0], t, self.dim]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> f64 {
        // A lookup is a copy, not FLOPs; count the copied elements.
        input_shape.iter().product::<usize>() as f64 * self.dim as f64
    }

    fn clear_slots(&mut self) {
        self.saved_ids.clear();
    }

    fn clear_slot(&mut self, slot: Slot) {
        self.saved_ids.remove(&slot);
    }

    fn cached_bytes(&self) -> u64 {
        self.saved_ids.values().map(|v| v.len() as u64 * 8).sum()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    #[test]
    fn lookup_returns_table_rows() {
        let mut e = Embedding::new(4, 3, &mut rng(1));
        let x = Tensor::from_vec(&[1, 2], vec![2.0, 0.0]);
        let y = e.forward(&x, 0);
        assert_eq!(y.shape(), &[1, 2, 3]);
        let table = e.table.value.clone();
        assert_eq!(&y.data()[0..3], &table.data()[6..9]);
        assert_eq!(&y.data()[3..6], &table.data()[0..3]);
    }

    #[test]
    fn backward_scatter_adds() {
        let mut e = Embedding::new(3, 2, &mut rng(2));
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]); // same token twice
        e.forward(&x, 0);
        let g = Tensor::from_vec(&[1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        e.backward(&g, 0);
        let tg = e.table.grad.data();
        assert_eq!(&tg[2..4], &[4.0, 6.0]); // row 1 accumulated both
        assert_eq!(&tg[0..2], &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "vocab")]
    fn out_of_vocab_panics() {
        let mut e = Embedding::new(2, 2, &mut rng(3));
        e.forward(&Tensor::from_vec(&[1, 1], vec![5.0]), 0);
    }
}
