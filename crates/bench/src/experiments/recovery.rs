//! Fault tolerance (§4): inject worker failures into real pipeline
//! training and quantify recovery.
//!
//! The paper's claim is structural: per-stage checkpoints at epoch
//! boundaries mean a failed run "restarts from the last successfully
//! created checkpoint for all stages", redoing **at most one epoch** of
//! work. This experiment kills workers at chosen points of a 3-stage
//! pipeline (and loses a message on the wire), lets the `pipedream-ft`
//! supervisor recover, and reports for each fault: detection latency,
//! the checkpoint resumed from, epochs redone, and end-quality parity
//! with an unfaulted run.

use crate::util::format_table;
use pipedream_core::PipelineConfig;
use pipedream_ft::{train_with_recovery, FaultPlan};
use pipedream_runtime::report::RecoveryRecord;
use pipedream_runtime::{train_pipeline, LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Relu, Scale, Tanh};
use pipedream_tensor::Sequential;
use std::fmt;
use std::sync::Arc;

/// The recovery experiment: one row per injected fault.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// Unfaulted final (loss, accuracy) baseline.
    pub baseline: (f32, f32),
    /// Recovery record per injected fault.
    pub records: Vec<RecoveryRecord>,
}

fn mlp(seed: u64) -> Sequential {
    let mut r = rng(seed);
    Sequential::new("recovery")
        .push(Linear::new(8, 32, &mut r))
        .push(Tanh::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Relu::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Tanh::new())
        .push(Scale::new(32))
        .push(Linear::new(32, 4, &mut r))
}

/// Run the experiment: `epochs` of training per fault (16 minibatches per
/// epoch), faults spread across stages and epochs.
pub fn run(epochs: usize) -> Recovery {
    let data = blobs(256, 8, 4, 0.6, 7);
    let config = PipelineConfig::straight(8, &[2, 5]); // 3 stages
    let opts = |dir: Option<std::path::PathBuf>| TrainOpts {
        epochs,
        batch: 16,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: dir,
        resume: false,
        depth: None,
        trace: false,
    };

    let (_, baseline) = train_pipeline(mlp(70), &config, &data, &opts(None));

    // Kills in different stages/epochs, plus a lost message: every fault
    // the runtime can recover from without human help.
    let specs = [
        "kill:stage=1,mb=24",
        "kill:stage=0,mb=40",
        "kill:stage=2,mb=19",
        "drop:stage=0,mb=21",
    ];
    let mut records = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let dir =
            std::env::temp_dir().join(format!("pipedream-recovery-{}-{i}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = Arc::new(FaultPlan::parse(spec).expect("spec is valid"));
        let (_, report) =
            train_with_recovery(&mlp(70), &config, &data, &opts(Some(dir.clone())), plan)
                .expect("supervised run recovers");
        let mut rec = report.recovery.expect("recovery record attached");
        rec.baseline_loss = Some(baseline.final_loss());
        rec.baseline_accuracy = Some(baseline.final_accuracy());
        records.push(rec);
        let _ = std::fs::remove_dir_all(&dir);
    }
    Recovery {
        baseline: (baseline.final_loss(), baseline.final_accuracy()),
        records,
    }
}

impl fmt::Display for Recovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault tolerance (§4): recovery from injected failures\n\n\
             3-stage pipeline, per-stage checkpoints at epoch boundaries;\n\
             every fault recovers by restarting from the last complete\n\
             checkpoint, redoing at most one epoch (the paper's bound):\n"
        )?;
        let header = [
            "fault",
            "detect (ms)",
            "resumed from",
            "epochs redone",
            "final loss",
            "final acc",
        ];
        let rows: Vec<Vec<String>> = self
            .records
            .iter()
            .map(|r| {
                vec![
                    r.fault.clone(),
                    format!("{:.1}", r.detection_latency_s * 1e3),
                    match r.resumed_from_epoch {
                        Some(e) => format!("epoch {e}"),
                        None => "—".to_string(),
                    },
                    r.epochs_redone.to_string(),
                    format!("{:.4}", r.final_loss),
                    format!("{:.3}", r.final_accuracy),
                ]
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))?;
        writeln!(
            f,
            "\nunfaulted baseline: loss {:.4}, accuracy {:.3}",
            self.baseline.0, self.baseline.1
        )
    }
}

/// The experiment as CSV.
impl Recovery {
    /// CSV rows for the figure data.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "fault,detection_ms,resumed_from_epoch,epochs_redone,final_loss,final_accuracy,baseline_loss,baseline_accuracy\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "\"{}\",{:.3},{},{},{},{},{},{}\n",
                r.fault,
                r.detection_latency_s * 1e3,
                r.resumed_from_epoch
                    .map_or(String::new(), |e| e.to_string()),
                r.epochs_redone,
                r.final_loss,
                r.final_accuracy,
                self.baseline.0,
                self.baseline.1,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_fault_recovers_within_one_epoch_at_parity() {
        let r = super::run(4);
        assert_eq!(r.records.len(), 4);
        for rec in &r.records {
            assert!(
                rec.epochs_redone <= 1,
                "{}: redid {} epochs",
                rec.fault,
                rec.epochs_redone
            );
            let acc_diff = (rec.final_accuracy - r.baseline.1).abs();
            assert!(
                acc_diff <= 0.12,
                "{}: accuracy {} vs baseline {}",
                rec.fault,
                rec.final_accuracy,
                r.baseline.1
            );
        }
        // At least the kills require an actual restart from a checkpoint.
        assert!(r.records.iter().any(|rec| rec.resumed_from_epoch.is_some()));
    }
}
