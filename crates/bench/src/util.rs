//! Shared helpers: table formatting and common simulation plumbing.

use pipedream_core::schedule::Schedule;
use pipedream_core::{PipelineConfig, Planner};
use pipedream_hw::Topology;
use pipedream_model::{LayerCosts, ModelProfile};
use pipedream_sim::{simulate_dp, simulate_pipeline, SimResult};
use std::fmt::Write as _;

/// Render rows as a fixed-width text table with a header.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (c, cell) in cells.iter().enumerate().take(cols) {
            let _ = write!(out, "{:<width$}  ", cell, width = widths[c]);
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Simulate steady-state pipeline throughput of `config` for `profile` on
/// `topo` (1F1B-RR, `n_mbs` minibatches).
pub fn pipeline_throughput(
    profile: &ModelProfile,
    topo: &Topology,
    config: &PipelineConfig,
    n_mbs: u64,
) -> SimResult {
    let costs = profile.costs(
        &topo.device,
        profile.default_batch,
        pipedream_hw::Precision::Fp32,
    );
    let schedule = Schedule::one_f_one_b(config, n_mbs);
    simulate_pipeline(&costs, topo, &schedule)
}

/// The configuration PipeDream's optimizer would deploy: run both the
/// hierarchical DP (§3.1) and the worker-granular flat DP, simulate each,
/// and keep the faster (the optimizer's final arbiter is predicted
/// throughput; simulation is our stand-in for its validation run).
pub fn best_plan(
    profile: &ModelProfile,
    topo: &Topology,
    n_mbs: u64,
) -> (PipelineConfig, SimResult) {
    let planner = Planner::new(profile, topo);
    let mut best: Option<(PipelineConfig, SimResult)> = None;
    for plan in [
        planner.try_plan().expect("hierarchical plan"),
        planner.try_plan_flat().expect("flat plan"),
    ] {
        let sim = pipeline_throughput(profile, topo, &plan.config, n_mbs);
        let better = match &best {
            None => true,
            Some((_, b)) => sim.samples_per_sec > b.samples_per_sec,
        };
        if better {
            best = Some((plan.config, sim));
        }
    }
    best.expect("two candidate plans")
}

/// Data-parallel samples/second over all workers of `topo`.
pub fn dp_throughput(costs: &LayerCosts, topo: &Topology) -> f64 {
    simulate_dp(costs, topo, topo.total_workers()).samples_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer-cell".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[3].starts_with("longer-cell"));
    }
}
