//! Differential test battery for the memory-efficient schedules: each
//! schedule's loss trajectory is pinned against an explicitly-computed
//! reference, so a semantics regression shows up as a bit flip, not a
//! convergence anecdote.
//!
//! - Recomputation is a pure memory/time trade: re-running the forward
//!   pass from the saved stage input under the stashed weights rebuilds
//!   the exact activations the first pass produced, so Recompute must be
//!   **bit-identical** to Vanilla1F1B.
//! - PipeDream-2BW changes the update rule: one averaged update per group
//!   of NOAM minibatches, every pass in group `g` running against
//!   generation `max(g−1, 0)`. That is delayed minibatch SGD with exactly
//!   two live weight versions — small enough to re-derive longhand on the
//!   full unpartitioned model and compare bit-for-bit.

use pipedream_core::stash::ScheduleKind;
use pipedream_core::PipelineConfig;
use pipedream_runtime::trainer::train_pipeline;
use pipedream_runtime::{LrSchedule, OptimKind, Semantics, TrainData, TrainOpts};
use pipedream_tensor::data::{blobs, Dataset};
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Dropout, Linear, Relu, Scale, Tanh};
use pipedream_tensor::{softmax_cross_entropy, Layer, Sequential, Tensor};

fn mlp(seed: u64) -> Sequential {
    let mut r = rng(seed);
    Sequential::new("mlp8")
        .push(Linear::new(8, 32, &mut r))
        .push(Tanh::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Relu::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Tanh::new())
        .push(Scale::new(32))
        .push(Linear::new(32, 4, &mut r))
}

fn easy_data() -> Dataset {
    blobs(256, 8, 4, 0.6, 7)
}

fn sched_opts(epochs: usize, schedule: ScheduleKind) -> TrainOpts {
    TrainOpts {
        epochs,
        batch: 16,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        schedule,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs: None,
        ..TrainOpts::default()
    }
}

fn assert_same_losses(a: &[(u64, f32)], b: &[(u64, f32)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: minibatch count");
    for (&(mb_a, loss_a), &(mb_b, loss_b)) in a.iter().zip(b.iter()) {
        assert_eq!(mb_a, mb_b);
        assert_eq!(loss_a, loss_b, "{what}: loss diverged at minibatch {mb_a}");
    }
}

fn assert_same_weights(a: &Sequential, b: &Sequential, what: &str) {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.len(), sb.len());
    for (i, (x, y)) in sa.iter().zip(sb.iter()).enumerate() {
        assert_eq!(
            x.data(),
            y.data(),
            "{what}: parameter tensor {i} diverged bitwise"
        );
    }
}

#[test]
fn recompute_is_bit_identical_to_vanilla_1f1b() {
    // Rebuilt activations are the same floats, so every loss and every
    // final parameter must match the vanilla run exactly.
    let data = easy_data();
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let (m_van, van) = train_pipeline(
        mlp(21),
        &config,
        &data,
        &sched_opts(3, ScheduleKind::Vanilla1F1B),
    );
    let (m_rec, rec) = train_pipeline(
        mlp(21),
        &config,
        &data,
        &sched_opts(3, ScheduleKind::Recompute),
    );
    assert_same_losses(&van.per_minibatch, &rec.per_minibatch, "recompute");
    assert_same_weights(&m_van, &m_rec, "recompute");
}

#[test]
fn recompute_is_bit_identical_under_dropout() {
    // The hard case: dropout masks are seeded per (layer, minibatch), so
    // the recomputation pass must regenerate the identical mask or the
    // rebuilt activations silently drift.
    let build = || {
        let mut r = rng(77);
        Sequential::new("drop")
            .push(Linear::new(8, 32, &mut r))
            .push(Relu::new())
            .push(Dropout::new(0.3, 123))
            .push(Linear::new(32, 32, &mut r))
            .push(Tanh::new())
            .push(Linear::new(32, 4, &mut r))
    };
    let data = easy_data();
    let config = PipelineConfig::straight(6, &[2, 4]);
    let (m_van, van) = train_pipeline(
        build(),
        &config,
        &data,
        &sched_opts(3, ScheduleKind::Vanilla1F1B),
    );
    let (m_rec, rec) = train_pipeline(
        build(),
        &config,
        &data,
        &sched_opts(3, ScheduleKind::Recompute),
    );
    assert_same_losses(&van.per_minibatch, &rec.per_minibatch, "dropout recompute");
    assert_same_weights(&m_van, &m_rec, "dropout recompute");
}

#[test]
fn recompute_composes_with_2bw_bit_identically() {
    // Recomputation is orthogonal to the update rule: TwoBWRecompute must
    // reproduce TwoBW exactly, just as Recompute reproduces vanilla.
    let data = easy_data();
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let (m_a, a) = train_pipeline(mlp(22), &config, &data, &sched_opts(2, ScheduleKind::TwoBW));
    let (m_b, b) = train_pipeline(
        mlp(22),
        &config,
        &data,
        &sched_opts(2, ScheduleKind::TwoBWRecompute),
    );
    assert_same_losses(&a.per_minibatch, &b.per_minibatch, "2bw recompute");
    assert_same_weights(&m_a, &m_b, "2bw recompute");
}

/// Longhand PipeDream-2BW reference on the full unpartitioned model:
/// delayed minibatch SGD with group-granular updates.
///
/// Generation `k` is the weights after `k` group updates (generation 0 is
/// the initialization). Every minibatch of group `g` runs forward AND
/// backward against generation `max(g−1, 0)`; at the end of the group the
/// accumulated gradient is averaged and applied to the *latest* weights:
///
///   W_{g+1} = W_g − lr · mean_{mb ∈ group g} ∇f(W_{max(g−1,0)}; mb)
///
/// Returns the per-minibatch losses (computed under the pinned
/// generation, exactly like the pipeline's output stage) and the final
/// model.
fn two_bw_reference(
    mut model: Sequential,
    dataset: &Dataset,
    opts: &TrainOpts,
    group: u64,
) -> (Sequential, Vec<(u64, f32)>) {
    let data = TrainData::new(dataset.clone(), opts.batch);
    let total = (opts.epochs * data.minibatches_per_epoch()) as u64;
    assert!(
        total.is_multiple_of(group),
        "reference assumes no partial trailing group ({total} mbs, group {group})"
    );
    let mut optimizer = opts.optim.build();
    optimizer.set_learning_rate(opts.optim.base_lr());
    // Pinned generation for the current group: max(g−1, 0). Group 0 and
    // group 1 both pin generation 0 (the initialization).
    let mut pinned: Vec<Tensor> = model.snapshot();
    let mut losses = Vec::with_capacity(total as usize);
    for g in 0..total / group {
        // The model currently holds the latest generation g; stash it so
        // the update applies there while passes run under the pin.
        let latest = model.snapshot();
        model.restore(&pinned);
        model.zero_grad();
        for mb in g * group..(g + 1) * group {
            let x = data.input(mb);
            let out = model.forward(&x, mb);
            let loss = softmax_cross_entropy(&out, &data.labels(mb));
            model.backward(&loss.grad, mb);
            losses.push((mb, loss.loss));
        }
        let scale = 1.0 / group as f32;
        for p in model.params_mut() {
            p.grad.scale_inplace(scale);
        }
        model.restore(&latest);
        let mut params = model.params_mut();
        optimizer.step(&mut params);
        drop(params);
        // The next group (g+1) pins generation g — the pre-update weights.
        pinned = latest;
    }
    (model, losses)
}

#[test]
fn two_bw_matches_the_delayed_sgd_reference_bitwise() {
    // The pipeline's 2BW run across 4 stages must equal the longhand
    // 2-version delayed-SGD recurrence on the whole model: same loss at
    // every minibatch, same final parameters, bit for bit.
    let data = easy_data();
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let opts = sched_opts(2, ScheduleKind::TwoBW);
    // Group = NOAM lifted to the replica LCM; no replicas here, so 4.
    let group = config.noam() as u64;
    assert_eq!(group, 4);
    let (m_pipe, pipe) = train_pipeline(mlp(23), &config, &data, &opts);
    let (m_ref, ref_losses) = two_bw_reference(mlp(23), &data, &opts, group);
    assert_same_losses(&pipe.per_minibatch, &ref_losses, "2bw vs reference");
    assert_same_weights(&m_pipe, &m_ref, "2bw vs reference");
}

#[test]
fn two_bw_differs_from_vanilla_but_still_learns() {
    // Sanity on the differential itself: 2BW is a *different* update rule
    // (fewer, group-averaged updates), so its trajectory must NOT match
    // vanilla — and it must still fit the easy dataset.
    use pipedream_runtime::trainer::evaluate;
    let data = easy_data();
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let (_, van) = train_pipeline(
        mlp(24),
        &config,
        &data,
        &sched_opts(8, ScheduleKind::Vanilla1F1B),
    );
    let (mut m, two) = train_pipeline(mlp(24), &config, &data, &sched_opts(8, ScheduleKind::TwoBW));
    let diverged = van
        .per_minibatch
        .iter()
        .zip(two.per_minibatch.iter())
        .any(|(a, b)| a.1 != b.1);
    assert!(diverged, "2BW must not silently degenerate to vanilla");
    let acc = evaluate(&mut m, &data, 16);
    assert!(acc > 0.9, "2BW accuracy {acc}");
}
