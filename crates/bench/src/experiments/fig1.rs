//! Figure 1: communication overhead of data-parallel training.
//!
//! Three server types (8×1080Ti/PCIe, 4×V100/PCIe, 8×V100/NVLink), five
//! models, weak scaling from 1 to 32 GPUs; y-axis is the fraction of
//! training time spent in communication stalls.

use crate::util::format_table;
use pipedream_hw::{Precision, ServerKind};
use pipedream_model::zoo;
use pipedream_sim::simulate_dp;
use std::fmt;

/// GPU counts swept (weak scaling, per-GPU minibatch constant).
pub const GPU_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// One (server type, model) series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Server type (Figure 1a/1b/1c).
    pub server: ServerKind,
    /// Model name.
    pub model: String,
    /// `(gpus, stall_fraction)` points.
    pub points: Vec<(usize, f64)>,
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// All series, grouped by server type.
    pub series: Vec<Series>,
}

/// Run the experiment.
pub fn run() -> Fig1 {
    let servers = [
        ServerKind::Pcie1080Ti8,
        ServerKind::PcieV100x4,
        ServerKind::NvlinkV100x8,
    ];
    let models = [
        zoo::vgg16(),
        zoo::resnet50(),
        zoo::alexnet(),
        zoo::gnmt8(),
        zoo::awd_lm(),
    ];
    let mut series = Vec::new();
    for server in servers {
        for model in &models {
            let costs = model.costs(&server.device(), model.default_batch, Precision::Fp32);
            let mut points = Vec::new();
            for &gpus in &GPU_COUNTS {
                let servers_needed = gpus.div_ceil(server.gpus_per_server());
                let topo = server.cluster(servers_needed.max(1));
                let r = simulate_dp(&costs, &topo, gpus);
                points.push((gpus, r.stall_fraction));
            }
            series.push(Series {
                server,
                model: model.name.clone(),
                points,
            });
        }
    }
    Fig1 { series }
}

impl Fig1 {
    /// Stall fraction for a given server/model/GPU count.
    pub fn stall(&self, server: ServerKind, model: &str, gpus: usize) -> f64 {
        self.series
            .iter()
            .find(|s| s.server == server && s.model == model)
            .and_then(|s| s.points.iter().find(|p| p.0 == gpus))
            .map(|p| p.1)
            .unwrap_or(f64::NAN)
    }
}

impl Fig1 {
    /// CSV: `server,model,gpus,stall_fraction` rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("server,model,gpus,stall_fraction\n");
        for s in &self.series {
            for (gpus, stall) in &s.points {
                out.push_str(&format!("{:?},{},{gpus},{stall:.4}\n", s.server, s.model));
            }
        }
        out
    }
}

impl fmt::Display for Fig1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: DP communication overhead (fraction of time in comm stalls)\n"
        )?;
        for server in [
            ServerKind::Pcie1080Ti8,
            ServerKind::PcieV100x4,
            ServerKind::NvlinkV100x8,
        ] {
            writeln!(f, "{server:?}:")?;
            let mut header = vec!["model"];
            let count_labels: Vec<String> =
                GPU_COUNTS.iter().map(|c| format!("{c} GPUs")).collect();
            header.extend(count_labels.iter().map(|s| s.as_str()));
            let rows: Vec<Vec<String>> = self
                .series
                .iter()
                .filter(|s| s.server == server)
                .map(|s| {
                    let mut row = vec![s.model.clone()];
                    row.extend(s.points.iter().map(|(_, v)| format!("{:.0}%", v * 100.0)));
                    row
                })
                .collect();
            writeln!(f, "{}", format_table(&header, &rows))?;
        }
        Ok(())
    }
}
