//! Differential kernel suite: every fast compute path is pinned to its
//! naive reference.
//!
//! The tiled GEMM (`crates/tensor/src/gemm.rs`) and the im2col
//! convolution must agree with the seed scalar kernels on random shapes
//! within 1e-5 relative tolerance. For plain products whose inner
//! dimension fits one cache block (k ≤ KC) the micro-kernel preserves
//! the reference's per-element summation *order* exactly, so on builds
//! without the `fma` target feature those cases are asserted
//! *bit-for-bit*; with FMA (the default under `target-cpu=native`) each
//! product+add rounds once instead of twice, a ≤ 1-ulp-per-step drift
//! covered by the same 1e-5 bound. A steady-state test at the bottom
//! locks in the buffer pool's no-allocation property for full training
//! steps.

use pipedream_tensor::gemm::{self, Backend};
use pipedream_tensor::init::{normal, rng};
use pipedream_tensor::layers::{conv2d_direct, conv2d_direct_backward, Conv2d, Linear, Tanh};
use pipedream_tensor::{pool, softmax_cross_entropy, Layer, Optimizer, Sequential, Sgd, Tensor};
use proptest::prelude::*;

/// 1e-5 relative tolerance with an absolute floor of 1e-5.
fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0)
}

fn assert_close(fast: &Tensor, reference: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.shape(), reference.shape());
    for (i, (x, y)) in fast.data().iter().zip(reference.data().iter()).enumerate() {
        prop_assert!(close(*x, *y), "element {i}: fast {x} vs reference {y}");
    }
    Ok(())
}

fn dims(max: usize) -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (1..=max, 1..=max, 1..=max, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiled GEMM == naive matmul; bit-identical on non-FMA builds while
    /// k fits a single KC block (these shapes are all far below
    /// KC = 256), within FMA rounding otherwise.
    #[test]
    fn gemm_matches_naive_matmul((m, k, n, s) in dims(48)) {
        let a = normal(&[m, k], 1.0, &mut rng(s));
        let b = normal(&[k, n], 1.0, &mut rng(s ^ 1));
        let fast = a.matmul(&b);
        let reference = a.matmul_naive(&b);
        if cfg!(target_feature = "fma") {
            assert_close(&fast, &reference)?;
        } else {
            prop_assert_eq!(fast.shape(), reference.shape());
            for (x, y) in fast.data().iter().zip(reference.data().iter()) {
                prop_assert!(x == y, "summation order diverged: {x} vs {y}");
            }
        }
    }

    /// A·Bᵀ with the transpose folded into packing == materialized form.
    #[test]
    fn gemm_nt_matches_materialized_transpose((m, k, n, s) in dims(40)) {
        let a = normal(&[m, k], 1.0, &mut rng(s));
        let bt = normal(&[n, k], 1.0, &mut rng(s ^ 2));
        assert_close(&a.matmul_nt(&bt), &a.matmul_naive(&bt.transpose()))?;
    }

    /// Aᵀ·B with the transpose folded into packing == materialized form.
    #[test]
    fn gemm_tn_matches_materialized_transpose((m, k, n, s) in dims(40)) {
        let at = normal(&[k, m], 1.0, &mut rng(s));
        let b = normal(&[k, n], 1.0, &mut rng(s ^ 3));
        assert_close(&at.matmul_tn(&b), &at.transpose().matmul_naive(&b))?;
    }

    /// Kernel-fused accumulation (`C += A·B`) == separate product + add.
    #[test]
    fn gemm_accumulate_matches_separate_add((m, k, n, s) in dims(32)) {
        let a = normal(&[m, k], 1.0, &mut rng(s));
        let b = normal(&[k, n], 1.0, &mut rng(s ^ 4));
        let c0 = normal(&[m, n], 1.0, &mut rng(s ^ 5));
        let mut fused = c0.clone();
        fused.add_matmul(&a, &b);
        assert_close(&fused, &c0.add(&a.matmul_naive(&b)))?;
        // And the tn accumulate used for weight gradients.
        let at = normal(&[k, m], 1.0, &mut rng(s ^ 6));
        let mut fused_tn = c0.clone();
        fused_tn.add_matmul_tn(&at, &b);
        assert_close(&fused_tn, &c0.add(&at.transpose().matmul_naive(&b)))?;
    }

    /// im2col + GEMM convolution forward == the direct 6-deep loop, over
    /// random geometry (channels, kernel, stride, padding, non-square).
    #[test]
    fn conv_forward_matches_direct(
        bch in 1usize..=2, c in 1usize..=3, oc in 1usize..=4,
        k in 1usize..=3, stride in 1usize..=2, padding in 0usize..=1,
        extra_h in 0usize..=5, extra_w in 0usize..=5, s in any::<u64>(),
    ) {
        let (h, w) = (k + extra_h, k + extra_w);
        let mut conv = Conv2d::new(c, oc, k, stride, padding, &mut rng(s));
        let x = normal(&[bch, c, h, w], 1.0, &mut rng(s ^ 7));
        gemm::set_thread_backend(Backend::Fast);
        let fast = conv.forward(&x, 0);
        let weight = conv.params()[0].value.clone();
        let bias = conv.params()[1].value.clone();
        let reference = conv2d_direct(&x, &weight, &bias, stride, padding);
        assert_close(&fast, &reference)?;
    }

    /// im2col + GEMM convolution backward == the direct loop's input,
    /// weight, and bias gradients.
    #[test]
    fn conv_backward_matches_direct(
        bch in 1usize..=2, c in 1usize..=3, oc in 1usize..=3,
        k in 1usize..=3, stride in 1usize..=2, padding in 0usize..=1,
        extra_h in 0usize..=4, extra_w in 0usize..=4, s in any::<u64>(),
    ) {
        let (h, w) = (k + extra_h, k + extra_w);
        let mut conv = Conv2d::new(c, oc, k, stride, padding, &mut rng(s));
        let x = normal(&[bch, c, h, w], 1.0, &mut rng(s ^ 8));
        gemm::set_thread_backend(Backend::Fast);
        let y = conv.forward(&x, 0);
        let g = normal(y.shape(), 1.0, &mut rng(s ^ 9));
        conv.zero_grad();
        let dx_fast = conv.backward(&g, 0);
        let weight = conv.params()[0].value.clone();
        let (dx_ref, dw_ref, db_ref) =
            conv2d_direct_backward(&x, &weight, &g, stride, padding);
        assert_close(&dx_fast, &dx_ref)?;
        assert_close(&conv.params()[0].grad, &dw_ref)?;
        assert_close(&conv.params()[1].grad, &db_ref)?;
    }

    /// The Naive backend reproduces the reference on every entry point the
    /// layers use, so a `TrainOpts.kernel` flip is a true kernel swap.
    #[test]
    fn naive_backend_dispatch_equals_reference((m, k, n, s) in dims(24)) {
        let a = normal(&[m, k], 1.0, &mut rng(s));
        let b = normal(&[k, n], 1.0, &mut rng(s ^ 10));
        let prev = gemm::thread_backend();
        gemm::set_thread_backend(Backend::Naive);
        let via_dispatch = a.matmul(&b);
        gemm::set_thread_backend(prev);
        let reference = a.matmul_naive(&b);
        prop_assert_eq!(via_dispatch.data(), reference.data());
    }
}

/// Once warm, 100 full training steps (forward, loss, backward, SGD
/// update) are served entirely from the buffer pool: zero pool misses,
/// i.e. no net allocations in the steady-state loop.
#[test]
fn training_steps_stop_allocating_once_pool_is_warm() {
    let mut r = rng(11);
    let mut model = Sequential::new("mlp")
        .push(Linear::new(8, 16, &mut r))
        .push(Tanh::new())
        .push(Linear::new(16, 4, &mut r));
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    let x = normal(&[4, 8], 1.0, &mut rng(12));
    let labels = vec![0usize, 1, 2, 3];

    let step = |model: &mut Sequential, opt: &mut Sgd| {
        let y = model.forward(&x, 0);
        let out = softmax_cross_entropy(&y, &labels);
        y.recycle();
        let dx = model.backward(&out.grad, 0);
        dx.recycle();
        out.grad.recycle();
        opt.step(&mut model.params_mut());
    };

    // Warm-up: first steps populate the free lists (and Sgd's velocity).
    for _ in 0..10 {
        step(&mut model, &mut opt);
    }
    let warm = pool::thread_stats().misses;
    for _ in 0..100 {
        step(&mut model, &mut opt);
    }
    let after = pool::thread_stats().misses;
    assert_eq!(
        after,
        warm,
        "steady-state training allocated {} fresh buffers in 100 steps",
        after - warm
    );
}
