//! Profiles of the paper's seven models, derived from their published
//! architectures.
//!
//! The paper's profiler measures `(T_l, a_l, w_l)` on a real GPU; here the
//! triple is computed from layer dimensions: weights and activations from
//! shape arithmetic, compute from FLOP counts. The property every PipeDream
//! result rests on is preserved: convolutional models (ResNet-50, and the
//! conv portion of VGG/AlexNet) have **small weights and large activations**,
//! while fully-connected/LSTM models (VGG's classifier, AlexNet's
//! classifier, GNMT, AWD-LM, S2VT) have **large weights and small
//! activations** — which is exactly what drives the optimizer toward data
//! parallelism for the former and pipelined straight/hybrid configurations
//! for the latter.
//!
//! Image models fuse each convolution with its activation/pooling into one
//! profiled layer (the activation size recorded is what actually crosses to
//! the next layer, i.e. post-pooling), matching how the paper's profiler
//! groups PyTorch modules.

use crate::profile::{LayerProfile, ModelProfile};

/// Builder that walks spatial dimensions through a convolutional trunk —
/// public so users can assemble profiles of their own architectures without
/// hand-computing FLOPs and activation shapes.
///
/// ```
/// use pipedream_model::zoo::ConvNetBuilder;
///
/// let mut b = ConvNetBuilder::new(3, 32, 32);
/// b.conv("c1", 16, 3, 1, 1, 2).conv("c2", 32, 3, 1, 1, 2).fc("head", 10);
/// let profile = b.build("tiny-cnn", 32, 3 * 32 * 32);
/// assert_eq!(profile.num_layers(), 3);
/// ```
pub struct ConvNetBuilder {
    layers: Vec<LayerProfile>,
    ch: u64,
    h: u64,
    w: u64,
}

impl ConvNetBuilder {
    /// Start a trunk at `channels × h × w` input resolution.
    pub fn new(channels: u64, h: u64, w: u64) -> Self {
        ConvNetBuilder {
            layers: Vec::new(),
            ch: channels,
            h,
            w,
        }
    }

    /// Convolution (+ReLU) with square kernel `k`, given stride/padding,
    /// optionally followed by a `pool`× max-pool that shrinks the output
    /// actually shipped to the next layer (`pool = 1` for none).
    pub fn conv(
        &mut self,
        name: &str,
        out_ch: u64,
        k: u64,
        stride: u64,
        pad: u64,
        pool: u64,
    ) -> &mut Self {
        let oh = (self.h + 2 * pad - k) / stride + 1;
        let ow = (self.w + 2 * pad - k) / stride + 1;
        let flops = 2.0 * (k * k * self.ch * out_ch * oh * ow) as f64;
        let (oh, ow) = (oh / pool, ow / pool);
        self.layers.push(LayerProfile::new(
            name,
            flops,
            out_ch * oh * ow,
            k * k * self.ch * out_ch + out_ch,
        ));
        self.ch = out_ch;
        self.h = oh;
        self.w = ow;
        self
    }

    /// ResNet bottleneck block (1×1 → 3×3 → 1×1 with expansion 4), fused
    /// into one profiled layer. `stride` applies to the 3×3 conv;
    /// `downsample` adds the 1×1 projection shortcut.
    pub fn bottleneck(
        &mut self,
        name: &str,
        mid_ch: u64,
        stride: u64,
        downsample: bool,
    ) -> &mut Self {
        let in_ch = self.ch;
        let out_ch = mid_ch * 4;
        let (oh, ow) = (self.h / stride, self.w / stride);
        let mut params = in_ch * mid_ch + mid_ch // 1x1 reduce
            + 9 * mid_ch * mid_ch + mid_ch       // 3x3
            + mid_ch * out_ch + out_ch; // 1x1 expand
        let mut flops = 2.0
            * ((in_ch * mid_ch * self.h * self.w)
                + (9 * mid_ch * mid_ch * oh * ow)
                + (mid_ch * out_ch * oh * ow)) as f64;
        if downsample {
            params += in_ch * out_ch + out_ch;
            flops += 2.0 * (in_ch * out_ch * oh * ow) as f64;
        }
        self.layers
            .push(LayerProfile::new(name, flops, out_ch * oh * ow, params));
        self.ch = out_ch;
        self.h = oh;
        self.w = ow;
        self
    }

    /// Global average pool: collapses the spatial extent to 1×1 (folded
    /// into the preceding layer's shipped activation size, as the paper's
    /// profiler would observe).
    pub fn global_avg_pool(&mut self) -> &mut Self {
        if let Some(last) = self.layers.last_mut() {
            last.activation_elems = self.ch;
        }
        self.h = 1;
        self.w = 1;
        self
    }

    /// Fully-connected (+ReLU) layer; flattens whatever spatial extent is
    /// left.
    pub fn fc(&mut self, name: &str, out_features: u64) -> &mut Self {
        let in_features = self.ch * self.h * self.w;
        self.layers.push(LayerProfile::new(
            name,
            2.0 * (in_features * out_features) as f64,
            out_features,
            in_features * out_features + out_features,
        ));
        self.ch = out_features;
        self.h = 1;
        self.w = 1;
        self
    }

    /// Finish the trunk into a [`ModelProfile`].
    pub fn build(self, name: &str, default_batch: usize, input_elems: u64) -> ModelProfile {
        ModelProfile {
            name: name.into(),
            layers: self.layers,
            default_batch,
            input_elems,
        }
    }
}

/// One (unidirectional) LSTM layer profile: `seq` timesteps over hidden
/// width `h` with input width `h` (4 gates, input + recurrent matmuls).
/// Public for assembling custom recurrent-model profiles.
pub fn lstm_layer(name: &str, hidden: u64, seq: u64) -> LayerProfile {
    let params = 4 * (hidden * hidden + hidden * hidden + hidden);
    let flops = 2.0 * seq as f64 * (8 * hidden * hidden) as f64;
    LayerProfile::new(name, flops, seq * hidden, params)
}

/// VGG-16 on ImageNet (224×224): 13 conv layers + 3 FC, ≈ 138 M params.
/// Paper per-GPU batch: 64.
pub fn vgg16() -> ModelProfile {
    let mut b = ConvNetBuilder::new(3, 224, 224);
    b.conv("conv1_1", 64, 3, 1, 1, 1)
        .conv("conv1_2", 64, 3, 1, 1, 2)
        .conv("conv2_1", 128, 3, 1, 1, 1)
        .conv("conv2_2", 128, 3, 1, 1, 2)
        .conv("conv3_1", 256, 3, 1, 1, 1)
        .conv("conv3_2", 256, 3, 1, 1, 1)
        .conv("conv3_3", 256, 3, 1, 1, 2)
        .conv("conv4_1", 512, 3, 1, 1, 1)
        .conv("conv4_2", 512, 3, 1, 1, 1)
        .conv("conv4_3", 512, 3, 1, 1, 2)
        .conv("conv5_1", 512, 3, 1, 1, 1)
        .conv("conv5_2", 512, 3, 1, 1, 1)
        .conv("conv5_3", 512, 3, 1, 1, 2)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000);
    b.build("VGG-16", 64, 3 * 224 * 224)
}

/// AlexNet on 224×224 inputs: 5 conv + 3 FC, ≈ 61 M params.
/// Paper per-GPU batch: 256 (synthetic data).
pub fn alexnet() -> ModelProfile {
    let mut b = ConvNetBuilder::new(3, 224, 224);
    b.conv("conv1", 96, 11, 4, 2, 2)
        .conv("conv2", 256, 5, 1, 2, 2)
        .conv("conv3", 384, 3, 1, 1, 1)
        .conv("conv4", 384, 3, 1, 1, 1)
        .conv("conv5", 256, 3, 1, 1, 2)
        .fc("fc6", 4096)
        .fc("fc7", 4096)
        .fc("fc8", 1000);
    b.build("AlexNet", 256, 3 * 224 * 224)
}

/// ResNet-50 on ImageNet: stem + 16 bottleneck blocks + FC, ≈ 25.6 M params.
/// Paper per-GPU batch: 128.
pub fn resnet50() -> ModelProfile {
    let mut b = ConvNetBuilder::new(3, 224, 224);
    b.conv("conv1", 64, 7, 2, 3, 2);
    let stages: [(u64, usize, &str); 4] = [
        (64, 3, "conv2"),
        (128, 4, "conv3"),
        (256, 6, "conv4"),
        (512, 3, "conv5"),
    ];
    for (si, &(mid, blocks, prefix)) in stages.iter().enumerate() {
        for blk in 0..blocks {
            let stride = if blk == 0 && si > 0 { 2 } else { 1 };
            b.bottleneck(&format!("{prefix}_{}", blk + 1), mid, stride, blk == 0);
        }
    }
    b.global_avg_pool();
    b.fc("fc", 1000);
    b.build("ResNet-50", 128, 3 * 224 * 224)
}

/// GNMT with `n` LSTM layers (paper: GNMT-8 / GNMT-16), hidden 1024,
/// vocab 32 k, WMT16-typical sequence length 50. Embedding and
/// softmax-projection layers bracket the LSTM stack; a small attention
/// layer sits mid-stack.
fn gnmt(n_lstm: usize) -> ModelProfile {
    const HIDDEN: u64 = 1024;
    const VOCAB: u64 = 32_000;
    const SEQ: u64 = 50;
    let mut layers = vec![LayerProfile::new(
        "embed_src",
        SEQ as f64 * HIDDEN as f64, // lookup ≈ copy cost
        SEQ * HIDDEN,
        VOCAB * HIDDEN,
    )];
    let half = n_lstm / 2;
    for i in 0..n_lstm {
        if i == half {
            // Decoder side starts: target embedding + attention.
            layers.push(LayerProfile::new(
                "embed_tgt",
                SEQ as f64 * HIDDEN as f64,
                SEQ * HIDDEN,
                VOCAB * HIDDEN,
            ));
            layers.push(LayerProfile::new(
                "attention",
                2.0 * (SEQ * SEQ * HIDDEN) as f64,
                SEQ * HIDDEN,
                2 * HIDDEN * HIDDEN,
            ));
        }
        let side = if i < half { "enc" } else { "dec" };
        layers.push(lstm_layer(&format!("lstm_{side}{i}"), HIDDEN, SEQ));
    }
    layers.push(LayerProfile::new(
        "softmax_proj",
        2.0 * (SEQ * HIDDEN * VOCAB) as f64,
        SEQ * VOCAB,
        HIDDEN * VOCAB + VOCAB,
    ));
    ModelProfile {
        name: format!("GNMT-{n_lstm}"),
        layers,
        default_batch: 64,
        input_elems: SEQ,
    }
}

/// GNMT with 8 LSTM layers. Paper per-GPU batch: 64.
pub fn gnmt8() -> ModelProfile {
    gnmt(8)
}

/// GNMT with 16 LSTM layers. Paper per-GPU batch: 64.
pub fn gnmt16() -> ModelProfile {
    gnmt(16)
}

/// AWD language model on PTB: six LSTM layers (paper §5.2) totalling
/// ≈ 0.41 GB of parameters with embedding + tied softmax. Per-GPU batch 80.
pub fn awd_lm() -> ModelProfile {
    const HIDDEN: u64 = 1350;
    const VOCAB: u64 = 10_000;
    const SEQ: u64 = 70;
    let mut layers = vec![LayerProfile::new(
        "embed",
        SEQ as f64 * HIDDEN as f64,
        SEQ * HIDDEN,
        VOCAB * HIDDEN,
    )];
    for i in 0..6 {
        layers.push(lstm_layer(&format!("lstm{i}"), HIDDEN, SEQ));
    }
    layers.push(LayerProfile::new(
        "softmax_proj",
        2.0 * (SEQ * HIDDEN * VOCAB) as f64,
        SEQ * VOCAB,
        HIDDEN * VOCAB + VOCAB,
    ));
    ModelProfile {
        name: "AWD-LM".into(),
        layers,
        default_batch: 80,
        input_elems: SEQ,
    }
}

/// S2VT video-captioning model: frame-feature encoder (fc7 4096-d inputs,
/// ~40 sampled frames per clip), two LSTM layers of width 500, word
/// projection over the MSVD vocabulary. Paper per-GPU batch 80, Cluster-C.
pub fn s2vt() -> ModelProfile {
    const FRAMES: u64 = 40;
    const HIDDEN: u64 = 500;
    const VOCAB: u64 = 13_000;
    let layers = vec![
        LayerProfile::new(
            "frame_fc",
            2.0 * (FRAMES * 4096 * HIDDEN) as f64,
            FRAMES * HIDDEN,
            4096 * HIDDEN + HIDDEN,
        ),
        lstm_layer("lstm_video", HIDDEN, FRAMES),
        lstm_layer("lstm_text", HIDDEN, FRAMES),
        LayerProfile::new(
            "word_proj",
            2.0 * (FRAMES * HIDDEN * VOCAB) as f64,
            FRAMES * VOCAB,
            HIDDEN * VOCAB + VOCAB,
        ),
    ];
    ModelProfile {
        name: "S2VT".into(),
        layers,
        default_batch: 80,
        input_elems: FRAMES * 4096,
    }
}

/// A uniform synthetic model: `n` identical layers. Useful for schedule and
/// planner tests where perfectly balanceable work is wanted.
pub fn uniform(n: usize, flops: f64, act_elems: u64, weight_params: u64) -> ModelProfile {
    ModelProfile {
        name: format!("uniform-{n}"),
        layers: (0..n)
            .map(|i| LayerProfile::new(format!("l{i}"), flops, act_elems, weight_params))
            .collect(),
        default_batch: 32,
        input_elems: act_elems,
    }
}

/// A deliberately weight-heavy language model for memory-schedule
/// studies: eight transformer-ish blocks of 200 M parameters each
/// (≈ 6.4 GB of fp32 weights total, ≈ 800 MB per layer) with tiny
/// activations, so weight *versions* dominate the per-worker footprint.
/// Under vanilla 1F1B stashing on a 4-worker pipeline every candidate
/// partition holds ≥ 8 layer-versions at its worst stage; PipeDream-2BW
/// caps that at 2 versions, which is what makes this model plannable
/// under budgets where vanilla is `MemoryInfeasible`.
pub fn huge_lm() -> ModelProfile {
    ModelProfile {
        name: "huge-lm".into(),
        layers: (0..8)
            .map(|i| LayerProfile::new(format!("block{i}"), 1e11, 1_000, 200_000_000))
            .collect(),
        default_batch: 32,
        input_elems: 1_000,
    }
}

/// All seven paper models, in the order they appear in Table 1.
pub fn all_models() -> Vec<ModelProfile> {
    vec![
        vgg16(),
        resnet50(),
        alexnet(),
        gnmt16(),
        gnmt8(),
        awd_lm(),
        s2vt(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedream_hw::Precision;

    #[test]
    fn vgg16_matches_published_size() {
        let m = vgg16();
        let params = m.total_params();
        // Published: ≈ 138 M parameters, ≈ 123.6 M of them in the FCs.
        assert!((params as f64 - 138.4e6).abs() / 138.4e6 < 0.01, "{params}");
        let fc_params: u64 = m.layers[13..].iter().map(|l| l.weight_params).sum();
        assert!(fc_params > 120_000_000);
        assert_eq!(m.num_layers(), 16);
    }

    #[test]
    fn resnet50_matches_published_size() {
        let m = resnet50();
        let params = m.total_params();
        // Published ≈ 25.6 M (ours omits batch-norm params, ~53 k).
        assert!((params as f64 - 25.5e6).abs() / 25.5e6 < 0.03, "{params}");
        assert_eq!(m.num_layers(), 1 + 16 + 1);
    }

    #[test]
    fn alexnet_matches_published_size() {
        let params = alexnet().total_params();
        assert!((params as f64 - 61e6).abs() / 61e6 < 0.05, "{params}");
    }

    #[test]
    fn awd_lm_is_0_41_gb() {
        let bytes = awd_lm().total_weight_bytes(Precision::Fp32);
        let gb = bytes as f64 / (1 << 30) as f64;
        assert!((gb - 0.41).abs() < 0.03, "{gb} GB");
    }

    #[test]
    fn gnmt16_has_8_more_lstms_than_gnmt8() {
        assert_eq!(gnmt16().num_layers() - gnmt8().num_layers(), 8);
        let extra = gnmt16().total_params() - gnmt8().total_params();
        // 8 extra LSTM layers at ≈ 8.4 M params each.
        assert!((extra as f64 - 8.0 * 8.4e6).abs() / (8.0 * 8.4e6) < 0.01);
    }

    #[test]
    fn conv_models_have_small_weights_big_activations() {
        // The key asymmetry PipeDream exploits (§2.1): for ResNet-50 conv
        // layers, activations dominate weights; for VGG's FC layers, the
        // reverse.
        let r = resnet50();
        let conv = &r.layers[4];
        assert!(conv.activation_elems * 32 > conv.weight_params);
        let v = vgg16();
        let fc6 = &v.layers[13];
        assert!(fc6.weight_params > fc6.activation_elems * 1000);
    }

    #[test]
    fn vgg_flops_are_plausible() {
        // Published VGG-16 forward ≈ 15.5 GFLOPs/sample (multiply-add
        // counted as 2 FLOPs ⇒ ≈ 31 G). Accept the 25–40 G band.
        let flops: f64 = vgg16().layers.iter().map(|l| l.flops_fwd).sum();
        assert!(flops > 25e9 && flops < 40e9, "{flops:.3e}");
    }

    #[test]
    fn resnet_flops_are_plausible() {
        // Published ≈ 4.1 GFLOPs MAC ⇒ ≈ 8.2 G with 2-FLOP convention.
        let flops: f64 = resnet50().layers.iter().map(|l| l.flops_fwd).sum();
        assert!(flops > 6e9 && flops < 11e9, "{flops:.3e}");
    }

    #[test]
    fn uniform_model_is_uniform() {
        let m = uniform(5, 1e9, 100, 200);
        assert_eq!(m.num_layers(), 5);
        assert!(m.layers.iter().all(|l| l.weight_params == 200));
    }

    #[test]
    fn all_models_round_trip_through_json() {
        for m in all_models() {
            let json = serde_json::to_string(&m).unwrap();
            let back: crate::ModelProfile = serde_json::from_str(&json).unwrap();
            assert_eq!(back, m, "{} JSON round trip", m.name);
        }
    }

    #[test]
    fn all_models_are_nonempty_and_named() {
        let models = all_models();
        assert_eq!(models.len(), 7);
        for m in &models {
            assert!(m.num_layers() >= 4, "{} too small", m.name);
            assert!(m.total_params() > 1_000_000);
        }
    }
}
