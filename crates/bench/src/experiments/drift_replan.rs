//! `drift-replan`: the live-telemetry feedback loop, end to end.
//!
//! The planner's partition is only as good as the profile it came from —
//! when a host degrades mid-run (thermal throttling, a noisy neighbor),
//! the measured stage times drift away from the plan and the pipeline
//! bottlenecks on the straggler. This experiment closes the loop:
//!
//! 1. profile → plan a balanced straight pipeline (as `trace-validate`);
//! 2. train it with a [`DelayStraggler`] injected into one stage, so
//!    every forward send from that stage stalls inside its `Fwd` span;
//! 3. a watcher thread drains [`LiveProfiler`] windows during the run and
//!    feeds each snapshot to a [`DriftDetector`] armed with the planner's
//!    own [`StagePrediction`]s — the straggler must trip the hysteresis;
//! 4. the final measured stage times go back into the planner via
//!    [`advise_replan`], which must recommend a partition whose simulated
//!    throughput beats the degraded pipeline's.
//!
//! [`run_applied`] closes the loop for real: the same setup (under a
//! heavier straggler — see [`APPLIED_DELAY`]) is handed to
//! [`train_with_autopilot`], which detects the straggler live,
//! drains to a consistent checkpoint, repartitions onto the advisor's
//! recommended plan, resumes mid-epoch, and commits (or rolls back) after
//! a measured probation window — no human in the loop.
//!
//! [`StagePrediction`]: pipedream_core::StagePrediction

use crate::util::format_table;
use pipedream_autopilot::{train_with_autopilot, AutopilotOpts};
use pipedream_core::{PipelineConfig, Planner};
use pipedream_ft::DelayStraggler;
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::{profile_sequential, LayerCosts};
use pipedream_obs::{
    advise_replan, DriftConfig, DriftDetector, DriftReport, LiveProfiler, ReplanAdvice,
    TraceSession,
};
use pipedream_runtime::report::ReconfigReport;
use pipedream_runtime::trainer::try_train_pipeline;
use pipedream_runtime::{LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Tanh};
use pipedream_tensor::{Sequential, Tensor};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const STAGES: usize = 4;
const BATCH: usize = 32;
const WIDTH: usize = 256;
/// Stage slowed down by the injected straggler (must not be the last
/// stage — the delay rides on forward *sends*).
const STRAGGLER_STAGE: usize = 1;
/// Injected per-minibatch stall. Stage compute at this scale is tens of
/// microseconds, so 2 ms is an unambiguous >1.5× drift signal.
const DELAY: Duration = Duration::from_millis(2);
/// Watcher sampling period; detection latency is measured in these. The
/// injected delay alone makes the run last ≥ `minibatches × DELAY`, so a
/// 50 ms period guarantees several in-run windows before training ends.
const SAMPLE_EVERY: Duration = Duration::from_millis(50);

fn model(seed: u64) -> Sequential {
    let mut r = rng(seed);
    let mut m = Sequential::new("drift-replan-mlp").push(Linear::new(16, WIDTH, &mut r));
    for _ in 0..(STAGES * 2 - 3) {
        m.push_boxed(Box::new(Tanh::new()));
        let lin = Linear::new(WIDTH, WIDTH, &mut r);
        m.push_boxed(Box::new(lin));
    }
    m.push_boxed(Box::new(Linear::new(WIDTH, 4, &mut r)));
    m
}

/// Everything the experiment measured and decided.
#[derive(Debug, Clone)]
pub struct DriftReplan {
    /// Stage the straggler was injected into.
    pub straggler_stage: usize,
    /// Injected per-send delay, milliseconds.
    pub injected_delay_ms: f64,
    /// Live samples taken before the detector first flagged the stage
    /// (None if it never fired — the acceptance gate).
    pub detected_after_samples: Option<usize>,
    /// The final drift report (measured vs planned, hysteresis state).
    pub report: DriftReport,
    /// The advisor's verdict from the final measured stage times.
    pub advice: ReplanAdvice,
    /// Live throughput of the degraded run, samples/second.
    pub degraded_samples_per_sec: f64,
    /// Wall time of the degraded training run, seconds.
    pub wall_time_s: f64,
}

/// Healthy profile → balanced straight plan: the shared starting point of
/// both the advisory ([`run`]) and applied ([`run_applied`]) experiments.
fn healthy_plan() -> (Topology, LayerCosts, PipelineConfig) {
    let topo = Topology::flat(
        Device::v100(),
        STAGES,
        LinkModel::new(1e14, 0.0),
        "local-threads",
    );
    let mut prof_model = model(5);
    let profile = profile_sequential(
        &mut prof_model,
        &Tensor::zeros(&[BATCH, 16]),
        1,
        3,
        &topo.device,
    );
    let costs = profile.costs(&topo.device, BATCH, Precision::Fp32);
    let planner = Planner::from_costs(costs.clone(), &topo);
    let boundaries = planner
        .balanced_boundaries(STAGES)
        .expect("model splits into stages");
    let config = PipelineConfig::straight(profile.num_layers(), &boundaries);
    (topo, costs, config)
}

/// Run the experiment: plan healthy, train degraded, detect, re-plan.
pub fn run(epochs: usize) -> DriftReplan {
    // Per-stage predictions are the detector's reference: what the planner
    // *thinks* each stage costs.
    let (topo, costs, config) = healthy_plan();
    let planner = Planner::from_costs(costs.clone(), &topo);
    let predictions = planner
        .try_predicted_stage_times(&config)
        .expect("stage predictions");

    // Degraded run: the straggler stalls every forward send from one
    // stage, inside the worker's Fwd span, while a watcher thread samples
    // the live profiler and feeds the drift detector.
    // 1024 samples → 32 minibatches/epoch: long enough (with the injected
    // 2 ms/mb stall) for the watcher to take several in-run windows.
    let data = blobs(1024, 16, 4, 0.7, 11);
    let session = TraceSession::new();
    let opts = TrainOpts {
        epochs,
        batch: BATCH,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        obs: Some(session.clone()),
        ..TrainOpts::default()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = {
        let session = session.clone();
        let stop = stop.clone();
        let predictions = predictions.clone();
        std::thread::spawn(move || {
            let mut profiler = LiveProfiler::new(session.clone());
            let mut detector = DriftDetector::new(predictions);
            let mut detected_after = None;
            let mut samples = 0usize;
            let last = loop {
                let done = stop.load(Ordering::Relaxed);
                let live = profiler.sample();
                let snap = session.snapshot();
                let report = detector.observe_with_tracks(&live, Some(&snap));
                samples += 1;
                if detected_after.is_none() && report.any_drift() {
                    detected_after = Some(samples);
                }
                // One final sample after training stops drains the tail of
                // the rings before the loop exits.
                if done {
                    break (report, live);
                }
                std::thread::sleep(SAMPLE_EVERY);
            };
            (detected_after, last)
        })
    };
    let hook = Arc::new(DelayStraggler::new(STRAGGLER_STAGE, DELAY));
    let (_, report) = try_train_pipeline(model(5), &config, &data, &opts, Some(hook.clone()))
        .expect("degraded training run failed");
    stop.store(true, Ordering::Relaxed);
    let (detected_after_samples, (drift, live)) = watcher.join().expect("watcher thread");
    assert!(hook.times_fired() > 0, "straggler never fired");

    // Feed measured reality back into the planner.
    let advice = advise_replan(&costs, &topo, &config, &live.measured_stage_s(), 48);
    // Whole-run average (the final sample's own window may be empty once
    // training has stopped).
    let degraded_samples_per_sec = if live.t_s > 0.0 {
        live.minibatches_total as f64 / live.t_s * BATCH as f64
    } else {
        0.0
    };

    DriftReplan {
        straggler_stage: STRAGGLER_STAGE,
        injected_delay_ms: DELAY.as_secs_f64() * 1e3,
        detected_after_samples,
        report: drift,
        advice,
        degraded_samples_per_sec,
        wall_time_s: report.wall_time_s,
    }
}

impl DriftReplan {
    /// CSV: per-stage measured/predicted/ratio/flag rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,measured_s,predicted_s,ratio,straggling\n");
        for s in &self.report.stages {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.3},{}\n",
                s.stage, s.measured_s, s.predicted_s, s.ratio, s.straggling
            ));
        }
        out
    }

    /// The final [`DriftReport`] as JSON (saved as `drift-report.json`).
    pub fn drift_report_json(&self) -> String {
        serde_json::to_string_pretty(&self.report).expect("drift report serializes")
    }

    /// The [`ReplanAdvice`] as JSON (saved as `recommended-plan.json`).
    pub fn recommended_plan_json(&self) -> String {
        serde_json::to_string_pretty(&self.advice).expect("advice serializes")
    }
}

impl fmt::Display for DriftReplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Injected a {:.0} ms/send delay straggler into stage {} of a {}-stage pipeline:\n",
            self.injected_delay_ms,
            self.straggler_stage,
            self.report.stages.len()
        )?;
        let header = [
            "stage",
            "measured (ms/mb)",
            "planned (ms/mb)",
            "ratio",
            "drifting",
        ];
        let rows: Vec<Vec<String>> = self
            .report
            .stages
            .iter()
            .map(|s| {
                vec![
                    s.stage.to_string(),
                    format!("{:.3}", s.measured_s * 1e3),
                    format!("{:.3}", s.predicted_s * 1e3),
                    format!("{:.2}x", s.ratio),
                    if s.straggling { "YES" } else { "-" }.to_string(),
                ]
            })
            .collect();
        f.write_str(&format_table(&header, &rows))?;
        match self.detected_after_samples {
            Some(n) => writeln!(
                f,
                "\ndetected after {n} live sample(s) ({:.0} ms sampling period)",
                SAMPLE_EVERY.as_secs_f64() * 1e3
            )?,
            None => writeln!(f, "\nNOT DETECTED — drift never tripped the hysteresis")?,
        }
        if self.report.bottleneck_shifted {
            writeln!(
                f,
                "bottleneck shifted: planned stage {} -> measured stage {}",
                self.report.planned_bottleneck,
                self.report
                    .measured_bottleneck
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "?".into())
            )?;
        }
        writeln!(
            f,
            "\nreplan advisor: {} -> {}{}",
            self.advice.current_label,
            self.advice.recommended_label,
            if self.advice.changed {
                ""
            } else {
                " (no change recommended)"
            }
        )?;
        writeln!(
            f,
            "  bottleneck {:.3} ms -> {:.3} ms under measured costs",
            self.advice.current_bottleneck_s * 1e3,
            self.advice.recommended_bottleneck_s * 1e3
        )?;
        writeln!(
            f,
            "  simulated throughput {:.0} -> {:.0} samples/s ({:.2}x); degraded run measured {:.0} samples/s",
            self.advice.current_sim_samples_per_sec,
            self.advice.recommended_sim_samples_per_sec,
            self.advice.sim_speedup,
            self.degraded_samples_per_sec
        )?;
        writeln!(f, "  (run wall time {:.2}s)", self.wall_time_s)
    }
}

/// What the closed-loop run did: the autopilot's reconfiguration record
/// plus the whole-run outcome it was stitched into.
#[derive(Debug, Clone)]
pub struct AppliedReplan {
    /// Stage the straggler was injected into.
    pub straggler_stage: usize,
    /// Injected per-send delay, milliseconds.
    pub injected_delay_ms: f64,
    /// The autopilot's reconfiguration record: plans, fingerprints,
    /// downtime, redone work, probation throughputs, verdict.
    pub reconfig: ReconfigReport,
    /// Wall time of the whole self-optimizing run, seconds (includes the
    /// drain, checkpoint, repartition, and probation).
    pub wall_time_s: f64,
    /// Final training loss — the run must still converge normally.
    pub final_loss: f32,
    /// Total minibatches trained across all segments (each exactly once).
    pub minibatches: usize,
}

/// Straggler injected into the *applied* run. Heavier than the advisory
/// run's [`DELAY`]: the advisor's replacement plan trades the straggling
/// stage for data-parallel allreduce overhead, and in a release build the
/// healthy compute is fast enough that a 2 ms stall alone doesn't leave
/// the new plan a measured win — probation would (correctly) roll the
/// switch back. 20 ms/minibatch caps the degraded pipeline at ~50 mb/s
/// under any build profile, so the committed verdict is profile- and
/// machine-independent.
const APPLIED_DELAY: Duration = Duration::from_millis(20);

/// Close the loop for real: train the degraded pipeline under
/// [`train_with_autopilot`] and let it detect, drain, repartition,
/// resume, and judge the new plan — no human in the loop.
pub fn run_applied(epochs: usize) -> AppliedReplan {
    let (topo, costs, config) = healthy_plan();
    let data = blobs(1024, 16, 4, 0.7, 11);
    let ckpt = std::env::temp_dir().join(format!("pd-drift-replan-applied-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let opts = TrainOpts {
        epochs,
        batch: BATCH,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: Some(ckpt.clone()),
        ..TrainOpts::default()
    };
    let auto = AutopilotOpts {
        drift: DriftConfig {
            min_minibatches: 1,
            ..DriftConfig::default()
        },
        sample_every: SAMPLE_EVERY,
        probation_windows: 2,
        probation_margin: 0.05,
        ..AutopilotOpts::default()
    };
    let hook = Arc::new(DelayStraggler::new(STRAGGLER_STAGE, APPLIED_DELAY));
    let (_, report) = train_with_autopilot(
        &model(5),
        &config,
        &data,
        &opts,
        &costs,
        &topo,
        &auto,
        Some(hook.clone()),
    )
    .expect("applied autopilot run failed");
    let _ = std::fs::remove_dir_all(&ckpt);
    assert!(hook.times_fired() > 0, "straggler never fired");
    let reconfig = report
        .reconfig
        .first()
        .cloned()
        .expect("autopilot never attempted a reconfiguration");
    AppliedReplan {
        straggler_stage: STRAGGLER_STAGE,
        injected_delay_ms: APPLIED_DELAY.as_secs_f64() * 1e3,
        reconfig,
        wall_time_s: report.wall_time_s,
        final_loss: report.final_loss(),
        minibatches: report.per_minibatch.len(),
    }
}

impl AppliedReplan {
    /// The [`ReconfigReport`] as JSON (saved as `reconfig-report.json`).
    pub fn reconfig_report_json(&self) -> String {
        serde_json::to_string_pretty(&self.reconfig).expect("reconfig report serializes")
    }
}

impl fmt::Display for AppliedReplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = &self.reconfig;
        writeln!(
            f,
            "Applied (closed-loop) run: {:.0} ms/send straggler in stage {}, autopilot on:\n",
            self.injected_delay_ms, self.straggler_stage
        )?;
        writeln!(
            f,
            "  plan {} ({:016x}) -> {} ({:016x})",
            r.old_label, r.old_plan_fingerprint, r.new_label, r.new_plan_fingerprint
        )?;
        writeln!(
            f,
            "  drained to checkpoint at epoch {}{}",
            r.drained_epoch,
            r.drained_mb
                .map(|mb| format!(", minibatch {mb}"))
                .unwrap_or_else(|| " boundary".into())
        )?;
        writeln!(
            f,
            "  downtime {:.0} ms, {} minibatch(es) redone",
            r.downtime_ms, r.minibatches_redone
        )?;
        writeln!(
            f,
            "  measured throughput {:.0} -> {:.0} samples/s ({:.0} during the switch)",
            r.throughput_before, r.throughput_after, r.throughput_during
        )?;
        writeln!(
            f,
            "  probation verdict: {} (margin {:.0}%)",
            r.verdict,
            r.probation_margin * 100.0
        )?;
        writeln!(
            f,
            "  run finished: {} minibatches, final loss {:.4}, wall time {:.2}s",
            self.minibatches, self.final_loss, self.wall_time_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ISSUE's acceptance gate: straggler detected live, advisor
    /// recommends a strictly better partition, report JSON round-trips.
    #[test]
    fn straggler_is_detected_and_replan_beats_degraded_run() {
        let r = run(2);
        assert!(
            r.detected_after_samples.is_some(),
            "straggler never detected:\n{r}"
        );
        assert!(
            r.report.stragglers().contains(&STRAGGLER_STAGE),
            "wrong stage flagged: {:?}",
            r.report.stragglers()
        );
        assert!(r.advice.changed, "advisor recommended no change:\n{r}");
        assert!(
            r.advice.sim_speedup > 1.0,
            "recommended plan not faster in simulation: {:.3}",
            r.advice.sim_speedup
        );
        assert!(
            r.advice.recommended_sim_samples_per_sec > r.degraded_samples_per_sec,
            "recommended plan ({:.0} samples/s) does not beat the degraded run ({:.0} samples/s)",
            r.advice.recommended_sim_samples_per_sec,
            r.degraded_samples_per_sec
        );
        // The saved artifact round-trips to the same report.
        let back: DriftReport = serde_json::from_str(&r.drift_report_json()).unwrap();
        assert_eq!(back, r.report);
        // And the rendering names the verdicts.
        let text = r.to_string();
        assert!(text.contains("detected after"), "{text}");
        assert!(text.contains("replan advisor"), "{text}");
    }

    /// The tentpole's end-to-end gate: the straggler is detected live, a
    /// repartition is applied with no human in the loop, and measured
    /// throughput recovers (probation commits the new plan).
    #[test]
    fn applied_replan_commits_and_throughput_recovers() {
        let r = run_applied(2);
        let rec = &r.reconfig;
        assert_eq!(
            rec.verdict,
            pipedream_runtime::report::ReconfigVerdict::Committed,
            "{rec:?}"
        );
        assert_ne!(
            rec.old_plan_fingerprint, rec.new_plan_fingerprint,
            "advisor applied the same plan it was fleeing: {rec:?}"
        );
        assert!(
            rec.throughput_after > rec.throughput_before,
            "throughput did not recover: {rec:?}"
        );
        assert_eq!(rec.minibatches_redone, 0, "a clean drain redoes nothing");
        // Every minibatch of both epochs trained exactly once across the
        // stitched segments.
        assert_eq!(r.minibatches, 64);
        assert!(r.final_loss.is_finite());
        // The saved artifact round-trips to the same record.
        let back: ReconfigReport = serde_json::from_str(&r.reconfig_report_json()).unwrap();
        assert_eq!(back, *rec);
        let text = r.to_string();
        assert!(text.contains("probation verdict: Committed"), "{text}");
    }
}
