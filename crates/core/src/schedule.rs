//! Static work schedules (paper §3.2).
//!
//! PipeDream's 1F1B-RR produces "a static schedule of operators that each
//! worker runs repeatedly, keeping utilization high across all workers."
//! This module generates those per-worker operation sequences:
//!
//! * [`Schedule::one_f_one_b`] — 1F1B with round-robin replica routing
//!   (1F1B-RR when stages are replicated): the input stage admits `NOAM`
//!   minibatches per replica at startup, then every worker alternates
//!   between the forward pass of a new minibatch and the backward pass of
//!   an earlier one, preferring backward work when it is available.
//! * [`Schedule::model_parallel`] — the degenerate one-minibatch-in-flight
//!   schedule of Figure 2 (vanilla model parallelism).
//! * [`Schedule::gpipe`] — GPipe's microbatch schedule (Figure 3): `m`
//!   forward passes, then `m` backward passes, then a pipeline flush with a
//!   synchronous weight update.
//!
//! The sequences carry no timing: the simulator executes them against a
//! hardware model (stalling on data dependencies), and the training runtime
//! executes them against real tensors.

use crate::config::PipelineConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One operation in a worker's static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Forward pass of the given minibatch through this worker's stage.
    Forward {
        /// Minibatch id.
        mb: u64,
    },
    /// Backward pass of the given minibatch (weight update applied
    /// immediately after, as in PipeDream's default semantics).
    Backward {
        /// Minibatch id.
        mb: u64,
    },
    /// Pipeline flush: apply accumulated weight gradients synchronously
    /// (GPipe only).
    Flush,
}

impl Op {
    /// The minibatch this op works on, if any.
    pub fn minibatch(&self) -> Option<u64> {
        match self {
            Op::Forward { mb } | Op::Backward { mb } => Some(*mb),
            Op::Flush => None,
        }
    }
}

/// The schedule of one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSchedule {
    /// Global worker id.
    pub worker: usize,
    /// Pipeline stage this worker runs.
    pub stage: usize,
    /// Replica index within the stage.
    pub replica: usize,
    /// Operations in execution order.
    pub ops: Vec<Op>,
}

/// A full static schedule: one op sequence per worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The configuration the schedule was generated for.
    pub config: PipelineConfig,
    /// Per-worker schedules, indexed by global worker id.
    pub workers: Vec<WorkerSchedule>,
    /// Number of minibatches scheduled.
    pub num_minibatches: u64,
}

impl Schedule {
    /// The 1F1B / 1F1B-RR schedule with the configuration's NOAM.
    ///
    /// ```
    /// use pipedream_core::{PipelineConfig, Schedule};
    ///
    /// let config = PipelineConfig::straight(4, &[0, 1, 2]);
    /// let s = Schedule::one_f_one_b(&config, 8);
    /// s.validate().unwrap();
    /// // The output stage alternates strictly from the start: F0 B0 F1 B1…
    /// use pipedream_core::schedule::Op;
    /// assert_eq!(s.workers[3].ops[0], Op::Forward { mb: 0 });
    /// assert_eq!(s.workers[3].ops[1], Op::Backward { mb: 0 });
    /// ```
    pub fn one_f_one_b(config: &PipelineConfig, num_minibatches: u64) -> Schedule {
        Self::generate_pipelined(config, num_minibatches, config.noam())
    }

    /// Vanilla model parallelism: at most one minibatch in flight
    /// (Figure 2). Only meaningful for straight pipelines.
    pub fn model_parallel(config: &PipelineConfig, num_minibatches: u64) -> Schedule {
        Self::generate_pipelined(config, num_minibatches, 1)
    }

    /// A pipelined schedule with an explicit in-flight limit per input
    /// replica (used for the Figure-18 pipeline-depth sweep).
    pub fn with_depth(config: &PipelineConfig, num_minibatches: u64, depth: usize) -> Schedule {
        Self::generate_pipelined(config, num_minibatches, depth.max(1))
    }

    /// Ablation of 1F1B's backward-priority rule: workers prefer *forward*
    /// work whenever it is admissible, falling back to backward passes only
    /// when no forward is available. Same in-flight caps as 1F1B. Used by
    /// the scheduling-policy ablation to show why the paper's rule matters.
    pub fn forward_priority(config: &PipelineConfig, num_minibatches: u64) -> Schedule {
        Self::generate_with_policy(config, num_minibatches, config.noam(), false)
    }

    /// GPipe's schedule: groups of `microbatches` forwards then backwards,
    /// separated by flushes. Requires a straight (unreplicated) pipeline,
    /// matching the paper's GPipe comparison (§5.4).
    pub fn gpipe(config: &PipelineConfig, num_minibatches: u64, microbatches: u64) -> Schedule {
        assert!(
            config.stages().iter().all(|s| s.replicas == 1),
            "GPipe schedules support straight pipelines only"
        );
        assert!(microbatches >= 1);
        let num_stages = config.num_stages();
        let mut workers = Vec::with_capacity(num_stages);
        for stage in 0..num_stages {
            let mut ops = Vec::new();
            let mut mb = 0u64;
            while mb < num_minibatches {
                let hi = (mb + microbatches).min(num_minibatches);
                for f in mb..hi {
                    ops.push(Op::Forward { mb: f });
                }
                // Backward in reverse order, as GPipe drains the pipeline.
                for b in (mb..hi).rev() {
                    ops.push(Op::Backward { mb: b });
                }
                ops.push(Op::Flush);
                mb = hi;
            }
            workers.push(WorkerSchedule {
                worker: stage,
                stage,
                replica: 0,
                ops,
            });
        }
        Schedule {
            config: config.clone(),
            workers,
            num_minibatches,
        }
    }

    /// Core generator: logical-time simulation of the 1F1B-RR policy with
    /// the paper's canonical timing (a backward pass takes twice as long as
    /// a forward pass — Figures 2–4).
    ///
    /// Whenever a worker goes idle it picks the oldest ready backward if
    /// one exists (backward priority gives the strict F/B alternation in
    /// steady state), otherwise the oldest ready forward. The input stage
    /// admits a new minibatch only while its replica has fewer than `depth`
    /// minibatches in flight. An op's output becomes visible to the
    /// consuming worker at the tick the op completes.
    fn generate_pipelined(config: &PipelineConfig, num_minibatches: u64, depth: usize) -> Schedule {
        Self::generate_with_policy(config, num_minibatches, depth, true)
    }

    /// Shared generator; `prefer_backward` selects 1F1B's rule (true) or
    /// the forward-priority ablation (false).
    fn generate_with_policy(
        config: &PipelineConfig,
        num_minibatches: u64,
        depth: usize,
        prefer_backward: bool,
    ) -> Schedule {
        const FWD_TICKS: u64 = 1;
        const BWD_TICKS: u64 = 2;
        let num_stages = config.num_stages();
        let num_workers = config.total_workers();
        let assignment = config.worker_assignment();
        let mut schedules: Vec<WorkerSchedule> = (0..num_workers)
            .map(|w| {
                let (stage, replica) = config.stage_of_worker(w);
                WorkerSchedule {
                    worker: w,
                    stage,
                    replica,
                    ops: Vec::new(),
                }
            })
            .collect();

        // Per-worker ready queues and busy-until times.
        let mut fwd_ready: Vec<VecDeque<u64>> = vec![VecDeque::new(); num_workers];
        let mut bwd_ready: Vec<VecDeque<u64>> = vec![VecDeque::new(); num_workers];
        let mut busy: Vec<Option<(u64, Op)>> = vec![None; num_workers]; // (finish tick, op)
                                                                        // Per-worker in-flight cap: stage `s` stashes at most
                                                                        // ⌈ Σ_{t≥s} r_t / r_s ⌉ minibatches (n − s for straight pipelines,
                                                                        // the §3.3 memory bound); the input stage uses the requested depth.
        let caps: Vec<usize> = (0..num_workers)
            .map(|w| {
                let (s, _) = config.stage_of_worker(w);
                if s == 0 {
                    depth
                } else {
                    let downstream: usize = config.stages()[s..].iter().map(|st| st.replicas).sum();
                    downstream
                        .div_ceil(config.stages()[s].replicas)
                        .min(depth)
                        .max(1)
                }
            })
            .collect();
        // In-flight minibatch count per worker; input replica r admits
        // minibatches r, r + r0, r + 2·r0, …
        let r0 = config.stages()[0].replicas;
        let mut in_flight = vec![0usize; num_workers];
        let mut next_admit: Vec<u64> = (0..r0 as u64).collect();
        let mut completed = 0u64;
        let mut tick = 0u64;

        while completed < num_minibatches {
            // Finish ops completing at this tick and deliver their outputs.
            for w in 0..num_workers {
                let Some((finish, op)) = busy[w] else {
                    continue;
                };
                if finish != tick {
                    continue;
                }
                busy[w] = None;
                let stage = schedules[w].stage;
                match op {
                    Op::Forward { mb } => {
                        if stage + 1 < num_stages {
                            let dst = assignment[stage + 1][config.replica_for(stage + 1, mb)];
                            fwd_ready[dst].push_back(mb);
                        } else {
                            // Output stage: loss computed; backward is ready
                            // on the same worker.
                            bwd_ready[w].push_back(mb);
                        }
                    }
                    Op::Backward { mb } => {
                        in_flight[w] -= 1;
                        if stage > 0 {
                            let dst = assignment[stage - 1][config.replica_for(stage - 1, mb)];
                            bwd_ready[dst].push_back(mb);
                        } else {
                            completed += 1;
                        }
                    }
                    Op::Flush => unreachable!("pipelined generator never emits Flush"),
                }
            }
            // Idle workers pick new work.
            for w in 0..num_workers {
                if busy[w].is_some() {
                    continue;
                }
                let (stage, replica) = (schedules[w].stage, schedules[w].replica);
                let try_forward = |fwd_ready: &mut Vec<VecDeque<u64>>,
                                   next_admit: &mut Vec<u64>,
                                   in_flight: &Vec<usize>| {
                    if in_flight[w] >= caps[w] {
                        return None;
                    }
                    if stage == 0 {
                        let mb = next_admit[replica];
                        if mb < num_minibatches {
                            next_admit[replica] += r0 as u64;
                            Some(Op::Forward { mb })
                        } else {
                            None
                        }
                    } else {
                        fwd_ready[w].pop_front().map(|mb| Op::Forward { mb })
                    }
                };
                let op = if prefer_backward {
                    if let Some(mb) = bwd_ready[w].pop_front() {
                        Some(Op::Backward { mb })
                    } else {
                        try_forward(&mut fwd_ready, &mut next_admit, &in_flight)
                    }
                } else {
                    match try_forward(&mut fwd_ready, &mut next_admit, &in_flight) {
                        Some(op) => Some(op),
                        None => bwd_ready[w].pop_front().map(|mb| Op::Backward { mb }),
                    }
                };
                if matches!(op, Some(Op::Forward { .. })) {
                    in_flight[w] += 1;
                }
                if let Some(op) = op {
                    let dur = match op {
                        Op::Forward { .. } => FWD_TICKS,
                        _ => BWD_TICKS,
                    };
                    schedules[w].ops.push(op);
                    busy[w] = Some((tick + dur, op));
                }
            }
            debug_assert!(
                busy.iter().any(Option::is_some) || completed >= num_minibatches,
                "schedule generation deadlocked with {completed}/{num_minibatches} done"
            );
            tick += 1;
        }

        Schedule {
            config: config.clone(),
            workers: schedules,
            num_minibatches,
        }
    }

    /// Validate schedule invariants; returns a description of the first
    /// violation, if any. Checked invariants:
    ///
    /// 1. every worker's ops touch only minibatches routed to its replica;
    /// 2. per worker, each minibatch has exactly one forward and one
    ///    backward, in that order (Flush ops excepted);
    /// 3. a minibatch's forward and backward land on the *same* worker
    ///    (the 1F1B-RR correctness requirement of §3.2);
    /// 4. all `num_minibatches` minibatches appear at every stage.
    pub fn validate(&self) -> Result<(), String> {
        for ws in &self.workers {
            let replicas = self.config.stages()[ws.stage].replicas;
            let mut seen_fwd = std::collections::HashSet::new();
            let mut seen_bwd = std::collections::HashSet::new();
            for op in &ws.ops {
                match *op {
                    Op::Forward { mb } => {
                        if mb % replicas as u64 != ws.replica as u64 {
                            return Err(format!(
                                "worker {} (stage {} replica {}) ran forward of mb {mb}",
                                ws.worker, ws.stage, ws.replica
                            ));
                        }
                        if !seen_fwd.insert(mb) {
                            return Err(format!("worker {}: duplicate forward {mb}", ws.worker));
                        }
                    }
                    Op::Backward { mb } => {
                        if !seen_fwd.contains(&mb) {
                            return Err(format!(
                                "worker {}: backward of {mb} before its forward",
                                ws.worker
                            ));
                        }
                        if !seen_bwd.insert(mb) {
                            return Err(format!("worker {}: duplicate backward {mb}", ws.worker));
                        }
                    }
                    Op::Flush => {}
                }
            }
            if seen_fwd != seen_bwd {
                return Err(format!(
                    "worker {}: {} forwards but {} backwards",
                    ws.worker,
                    seen_fwd.len(),
                    seen_bwd.len()
                ));
            }
        }
        // Coverage per stage.
        for stage in 0..self.config.num_stages() {
            let count: usize = self
                .workers
                .iter()
                .filter(|w| w.stage == stage)
                .map(|w| {
                    w.ops
                        .iter()
                        .filter(|o| matches!(o, Op::Forward { .. }))
                        .count()
                })
                .sum();
            if count as u64 != self.num_minibatches {
                return Err(format!(
                    "stage {stage} saw {count} forwards, expected {}",
                    self.num_minibatches
                ));
            }
        }
        Ok(())
    }

    /// The repeating steady-state op pattern of `worker` — the paper's
    /// "static schedule of operators that each worker runs repeatedly".
    ///
    /// Skips the startup phase and the drain tail, then finds the shortest
    /// cycle of op *kinds* (forward/backward, with minibatch ids abstracted
    /// to strides) that tiles the steady region. For a balanced straight
    /// pipeline under 1F1B this is `[Backward, Forward]`; a replica of an
    /// `r`-way stage sees the same pattern with minibatch stride `r`.
    /// Returns `None` when the schedule is too short to have a steady state.
    pub fn steady_state_pattern(&self, worker: usize) -> Option<Vec<&'static str>> {
        let ops = &self.workers[worker].ops;
        if ops.len() < 8 {
            return None;
        }
        // Steady region: middle half.
        let kinds: Vec<&'static str> = ops[ops.len() / 4..3 * ops.len() / 4]
            .iter()
            .map(|o| match o {
                Op::Forward { .. } => "F",
                Op::Backward { .. } => "B",
                Op::Flush => "|",
            })
            .collect();
        // Shortest period that tiles the region.
        for period in 1..=kinds.len() / 2 {
            if kinds
                .iter()
                .enumerate()
                .all(|(i, k)| *k == kinds[i % period])
            {
                return Some(kinds[..period].to_vec());
            }
        }
        None
    }

    /// Maximum number of minibatches simultaneously holding stashed state at
    /// any worker (forward done, backward not yet) — the memory-relevant
    /// pipeline depth actually realised by the schedule.
    pub fn peak_in_flight(&self, worker: usize) -> usize {
        let mut depth = 0usize;
        let mut peak = 0usize;
        for op in &self.workers[worker].ops {
            match op {
                Op::Forward { .. } => {
                    depth += 1;
                    peak = peak.max(depth);
                }
                Op::Backward { .. } => depth -= 1,
                Op::Flush => {}
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(stages: usize) -> PipelineConfig {
        PipelineConfig::straight(stages, &(0..stages - 1).collect::<Vec<_>>())
    }

    #[test]
    fn figure4_startup_and_steady_state() {
        // 4-stage straight pipeline (Figure 4): stage 0 admits NOAM = 4
        // minibatches before its first backward.
        let config = straight(4);
        let s = Schedule::one_f_one_b(&config, 12);
        s.validate().unwrap();
        let ops0 = &s.workers[0].ops;
        let first_bwd = ops0
            .iter()
            .position(|o| matches!(o, Op::Backward { .. }))
            .unwrap();
        let fwd_before: Vec<u64> = ops0[..first_bwd]
            .iter()
            .filter_map(|o| o.minibatch())
            .collect();
        assert_eq!(
            fwd_before,
            vec![0, 1, 2, 3],
            "startup admits NOAM minibatches"
        );
        // Steady state: strict F/B alternation on stage 0 after startup.
        let steady = &ops0[first_bwd..ops0.len() - 4];
        for pair in steady.chunks(2) {
            assert!(matches!(pair[0], Op::Backward { .. }));
            if pair.len() > 1 {
                assert!(matches!(pair[1], Op::Forward { .. }));
            }
        }
    }

    #[test]
    fn last_stage_alternates_from_the_start() {
        let config = straight(4);
        let s = Schedule::one_f_one_b(&config, 8);
        let ops = &s.workers[3].ops;
        // Output stage: F0 B0 F1 B1 … (1F1B with NOAM 1 locally).
        assert_eq!(ops[0], Op::Forward { mb: 0 });
        assert_eq!(ops[1], Op::Backward { mb: 0 });
        assert_eq!(ops[2], Op::Forward { mb: 1 });
        assert_eq!(ops[3], Op::Backward { mb: 1 });
    }

    #[test]
    fn model_parallel_has_one_in_flight() {
        let config = straight(4);
        let s = Schedule::model_parallel(&config, 6);
        s.validate().unwrap();
        for w in 0..4 {
            assert_eq!(s.peak_in_flight(w), 1);
        }
    }

    #[test]
    fn one_f_one_b_peak_in_flight_decreases_along_pipeline() {
        // §3.3: stage s of an n-stage pipeline stashes n − s versions.
        let config = straight(4);
        let s = Schedule::one_f_one_b(&config, 20);
        assert_eq!(s.peak_in_flight(0), 4);
        assert_eq!(s.peak_in_flight(1), 3);
        assert_eq!(s.peak_in_flight(2), 2);
        assert_eq!(s.peak_in_flight(3), 1);
    }

    #[test]
    fn figure8_round_robin_routing() {
        // 2-1 configuration (Figure 8): replica 0 of stage 0 handles even
        // minibatches, replica 1 odd ones, worker 2 handles all.
        let config = PipelineConfig::from_counts(&[(1, 2), (1, 1)]);
        let s = Schedule::one_f_one_b(&config, 10);
        s.validate().unwrap();
        for op in &s.workers[0].ops {
            assert_eq!(op.minibatch().unwrap() % 2, 0);
        }
        for op in &s.workers[1].ops {
            assert_eq!(op.minibatch().unwrap() % 2, 1);
        }
        let w2_fwds: Vec<u64> = s.workers[2]
            .ops
            .iter()
            .filter_map(|o| match o {
                Op::Forward { mb } => Some(*mb),
                _ => None,
            })
            .collect();
        assert_eq!(w2_fwds, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gpipe_groups_and_flushes() {
        let config = straight(3);
        let s = Schedule::gpipe(&config, 8, 4);
        s.validate().unwrap();
        let ops = &s.workers[0].ops;
        // First group: F0..F3, B3..B0, Flush.
        assert_eq!(
            &ops[..9],
            &[
                Op::Forward { mb: 0 },
                Op::Forward { mb: 1 },
                Op::Forward { mb: 2 },
                Op::Forward { mb: 3 },
                Op::Backward { mb: 3 },
                Op::Backward { mb: 2 },
                Op::Backward { mb: 1 },
                Op::Backward { mb: 0 },
                Op::Flush,
            ]
        );
        let flushes = ops.iter().filter(|o| matches!(o, Op::Flush)).count();
        assert_eq!(flushes, 2);
    }

    #[test]
    #[should_panic(expected = "straight pipelines only")]
    fn gpipe_rejects_replication() {
        let config = PipelineConfig::from_counts(&[(1, 2), (1, 1)]);
        Schedule::gpipe(&config, 4, 2);
    }

    #[test]
    fn schedules_are_deterministic() {
        let config = PipelineConfig::from_counts(&[(2, 2), (1, 1), (1, 1)]);
        let a = Schedule::one_f_one_b(&config, 16);
        let b = Schedule::one_f_one_b(&config, 16);
        assert_eq!(a, b, "1F1B-RR is a static schedule");
    }

    #[test]
    fn validate_catches_foreign_minibatch() {
        let config = PipelineConfig::from_counts(&[(1, 2), (1, 1)]);
        let mut s = Schedule::one_f_one_b(&config, 4);
        // Corrupt: give worker 0 (even replica) an odd minibatch.
        s.workers[0].ops.push(Op::Forward { mb: 3 });
        assert!(s.validate().is_err());
    }

    #[test]
    fn depth_limits_in_flight() {
        let config = straight(4);
        for depth in 1..=6 {
            let s = Schedule::with_depth(&config, 24, depth);
            s.validate().unwrap();
            assert_eq!(s.peak_in_flight(0), depth.min(24));
        }
    }

    #[test]
    fn steady_state_is_one_forward_one_backward() {
        // §3.2: "each stage alternates between performing its forward pass
        // for a minibatch and its backward pass for an earlier minibatch"
        // — the steady-state pattern has period 2 for every stage of a
        // balanced straight pipeline.
        let config = straight(4);
        let s = Schedule::one_f_one_b(&config, 64);
        for w in 0..4 {
            let pat = s
                .steady_state_pattern(w)
                .expect("long run has steady state");
            assert_eq!(pat.len(), 2, "worker {w}: {pat:?}");
            assert!(
                pat.contains(&"F") && pat.contains(&"B"),
                "worker {w}: {pat:?}"
            );
        }
    }

    #[test]
    fn gpipe_steady_pattern_is_not_alternating() {
        // GPipe's groups produce runs of Fs then runs of Bs — never the
        // period-2 alternation.
        let config = straight(4);
        let s = Schedule::gpipe(&config, 64, 4);
        let pat = s.steady_state_pattern(0).expect("steady state");
        assert!(pat.len() > 2, "{pat:?}");
    }

    #[test]
    fn all_minibatches_complete_with_many_replicas() {
        let config = PipelineConfig::from_counts(&[(1, 3), (2, 2), (1, 1)]);
        let s = Schedule::one_f_one_b(&config, 30);
        s.validate().unwrap();
    }
}
