//! `repro` — regenerate the PipeDream paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro <experiment>…           # one or more of the ids below
//! repro all                     # everything, in paper order
//! repro all --save out/         # also write per-experiment .txt (and .csv
//!                               # for the data figures) into out/
//! repro list                    # list available experiments
//! ```
//!
//! Experiment ids: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//! fig12 fig13 fig14 fig15 fig16 fig17 fig18 table1 table2 table3 asp gpipe
//! opt ablations trend verify sensitivity recovery trace-validate
//! drift-replan memory-sweep.

use pipedream_bench::experiments as e;
use std::fs;
use std::path::PathBuf;

const ALL: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "table2",
    "table3",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "asp",
    "gpipe",
    "opt",
    "ablations",
    "trend",
    "verify",
    "sensitivity",
    "recovery",
    "trace-validate",
    "drift-replan",
    "memory-sweep",
];

/// Run one experiment; returns `(title, rendered text, optional CSV,
/// optional SVG, optional extra named artifacts)`.
#[allow(clippy::type_complexity)]
fn run_one(
    id: &str,
) -> Option<(
    &'static str,
    String,
    Option<String>,
    Option<String>,
    Option<Vec<(String, String)>>,
)> {
    // drift-replan carries extra JSON artifacts (the drift report, the
    // advisor's recommended plan, and the applied run's reconfiguration
    // record); every other experiment has none.
    if id == "drift-replan" {
        let r = e::drift_replan::run(3);
        let applied = e::drift_replan::run_applied(2);
        return Some((
            "Live drift detection, replan advisor, and applied reconfiguration",
            format!("{r}\n{applied}"),
            Some(r.to_csv()),
            None,
            Some(vec![
                ("drift-report.json".to_string(), r.drift_report_json()),
                (
                    "recommended-plan.json".to_string(),
                    r.recommended_plan_json(),
                ),
                (
                    "reconfig-report.json".to_string(),
                    applied.reconfig_report_json(),
                ),
            ]),
        ));
    }
    // memory-sweep saves the full sweep record as JSON next to its table.
    if id == "memory-sweep" {
        let r = e::memory_sweep::run(2);
        return Some((
            "Memory-efficient schedules: 2BW + recomputation under a hard budget",
            r.to_string(),
            Some(r.to_csv()),
            None,
            Some(vec![("memory-sweep.json".to_string(), r.sweep_json())]),
        ));
    }
    let out = match id {
        "fig1" => {
            let r = e::fig1::run();
            (
                "Figure 1: DP communication overhead",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "fig2" => {
            let f = e::timelines::fig2();
            (
                "Figure 2: model-parallel timeline",
                f.to_string(),
                None,
                Some(f.to_svg()),
            )
        }
        "fig3" => {
            let f = e::timelines::fig3();
            (
                "Figure 3: GPipe timeline",
                f.to_string(),
                None,
                Some(f.to_svg()),
            )
        }
        "fig4" => {
            let f = e::timelines::fig4();
            (
                "Figure 4: PipeDream 1F1B timeline",
                f.to_string(),
                None,
                Some(f.to_svg()),
            )
        }
        "fig5" => (
            "Figure 5: compute/communication overlap",
            e::timelines::fig5().to_string(),
            None,
            None,
        ),
        "fig6" => (
            "Figure 6: PipeDream's automated workflow (executed)",
            e::fig6_7::fig6().to_string(),
            None,
            None,
        ),
        "fig7" => (
            "Figure 7: hierarchical hardware topology",
            e::fig6_7::fig7().to_string(),
            None,
            None,
        ),
        "fig8" => {
            let f = e::timelines::fig8();
            (
                "Figure 8: 1F1B-RR on a 2-1 configuration",
                f.to_string(),
                None,
                Some(f.to_svg()),
            )
        }
        "fig9" => (
            "Figure 9: weight stashing versions (real runtime)",
            e::fig9::run().to_string(),
            None,
            None,
        ),
        "table1" => (
            "Table 1: PipeDream vs data parallelism",
            e::table1::run(64).to_string(),
            None,
            None,
        ),
        "table2" => (
            "Table 2: cluster characteristics",
            e::table2::run().to_string(),
            None,
            None,
        ),
        "table3" => (
            "Table 3: cloud vs dedicated DP slowdown",
            e::table3::run().to_string(),
            None,
            None,
        ),
        "fig10" => {
            let r = e::fig10::run();
            (
                "Figure 10: VGG-16 accuracy vs time",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "fig11" => (
            "Figure 11: accuracy vs epoch (statistical efficiency)",
            e::fig11::run(16).to_string(),
            None,
            None,
        ),
        "fig12" => {
            let r = e::fig12::run();
            (
                "Figure 12: fp16 vs fp32 DP overhead",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "fig13" => (
            "Figure 13: large minibatches + LARS",
            e::fig13::run().to_string(),
            None,
            None,
        ),
        "fig14" => (
            "Figure 14: vs model/hybrid parallelism",
            e::fig14::run().to_string(),
            None,
            None,
        ),
        "fig15" => {
            let r = e::fig15::run();
            (
                "Figure 15: predicted vs simulated throughput",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "fig16" => (
            "Figure 16: memory footprint",
            e::fig16::run().to_string(),
            None,
            None,
        ),
        "fig17" => (
            "Figure 17: bytes per sample",
            e::fig17::run().to_string(),
            None,
            None,
        ),
        "fig18" => {
            let r = e::fig18::run();
            (
                "Figure 18: pipeline depth sweep",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "asp" => (
            "§5.2: ASP comparison",
            e::asp::run().to_string(),
            None,
            None,
        ),
        "gpipe" => (
            "§5.4: GPipe comparison",
            e::gpipe::run().to_string(),
            None,
            None,
        ),
        "opt" => (
            "§5.5: optimizer runtime",
            e::opt::run().to_string(),
            None,
            None,
        ),
        "sensitivity" => (
            "Calibration sensitivity sweep",
            e::sensitivity::run().to_string(),
            None,
            None,
        ),
        "recovery" => {
            let r = e::recovery::run(4);
            (
                "Fault tolerance (§4): recovery from injected failures",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "trace-validate" => {
            let r = e::trace_validate::run(3);
            (
                "Trace validation: measured vs planned stage times",
                r.to_string(),
                Some(r.to_csv()),
                None,
            )
        }
        "trend" => (
            "Intro claim: faster GPUs shift the bottleneck to communication",
            e::trend::run().to_string(),
            None,
            None,
        ),
        "verify" => (
            "Paper-shape verification",
            e::verify::run().to_string(),
            None,
            None,
        ),
        "ablations" => (
            "Ablations: 1F1B priority rule, CoW stashing, NOAM",
            e::ablations::run().to_string(),
            None,
            None,
        ),
        _ => return None,
    };
    let (title, text, csv, svg) = out;
    Some((title, text, csv, svg, None))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available experiments: {}", ALL.join(" "));
        println!("usage: repro <id>… | all | list  [--save <dir>]");
        return;
    }
    let save_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--save")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter()
            .take_while(|a| *a != "--save")
            .map(String::as_str)
            .collect()
    };
    if let Some(dir) = &save_dir {
        fs::create_dir_all(dir).expect("create save dir");
    }
    for id in ids {
        let Some((title, text, csv, svg, extras)) = run_one(id) else {
            eprintln!("unknown experiment '{id}'; try `repro list`");
            std::process::exit(1);
        };
        println!("{}", "=".repeat(78));
        println!("[{id}] {title}");
        println!("{}", "=".repeat(78));
        println!("{text}");
        if let Some(dir) = &save_dir {
            fs::write(dir.join(format!("{id}.txt")), &text).expect("write txt");
            if let Some(csv) = csv {
                fs::write(dir.join(format!("{id}.csv")), csv).expect("write csv");
            }
            if let Some(svg) = svg {
                fs::write(dir.join(format!("{id}.svg")), svg).expect("write svg");
            }
            for (name, contents) in extras.into_iter().flatten() {
                fs::write(dir.join(&name), contents).expect("write artifact");
            }
        }
    }
}
