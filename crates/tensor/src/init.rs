//! Weight initialization.

use crate::tensor::Tensor;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A seeded RNG for deterministic experiments.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform(-limit, limit) initialization.
pub fn uniform(shape: &[usize], limit: f32, rng: &mut StdRng) -> Tensor {
    let dist = rand::distributions::Uniform::new_inclusive(-limit, limit);
    let n: usize = shape.iter().product();
    Tensor::from_vec(shape, (0..n).map(|_| dist.sample(rng)).collect())
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(&[fan_in, fan_out], limit, rng)
}

/// He/Kaiming uniform initialization (for ReLU networks).
pub fn kaiming(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Tensor {
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform(&[fan_in, fan_out], limit, rng)
}

/// Standard-normal tensor scaled by `std`.
pub fn normal(shape: &[usize], std: f32, rng: &mut StdRng) -> Tensor {
    // Box-Muller from two uniforms; avoids needing rand_distr.
    let unif = rand::distributions::Uniform::new(f32::EPSILON, 1.0f32);
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = unif.sample(rng);
        let u2: f32 = unif.sample(rng);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = xavier(16, 16, &mut rng(7));
        let b = xavier(16, 16, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_within_limit() {
        let limit = (6.0f32 / 32.0).sqrt();
        let t = xavier(16, 16, &mut rng(1));
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let t = normal(&[10_000], 2.0, &mut rng(3));
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
