//! Fault-injection hooks and typed worker failures (paper §4).
//!
//! PipeDream's fault-tolerance story is deliberately simple: stages
//! checkpoint at epoch boundaries without global coordination, and a
//! failed run "entails starting from the last successfully created
//! checkpoint for all stages". To demonstrate that mechanically we need
//! two things from the runtime itself:
//!
//! * a way to make workers *fail on purpose*, deterministically — the
//!   [`FaultHook`] trait, threaded into [`crate::worker::StageWorker`]
//!   behind an `Option` so the fault-free path pays one pointer check per
//!   op and nothing else;
//! * a typed [`WorkerError`] replacing the ad-hoc panics the workers used
//!   to die with, so a supervisor (see the `pipedream-ft` crate) can tell
//!   *what* failed and react, instead of unwinding the whole process.
//!
//! The hook's default methods are all no-ops, so implementors only
//! override the faults they inject.

use pipedream_core::schedule::Op;
use std::fmt;
use std::path::Path;
use std::time::Duration;

/// What a worker should do before executing an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute the op normally.
    Continue,
    /// Die silently, as if the worker's machine failed. No error message
    /// is sent to the coordinator: the failure must be *detected* via
    /// channel disconnects and missing heartbeats, like a real crash.
    Kill,
}

/// What a worker should do with an outgoing forward-pass send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendAction {
    /// Deliver the message normally.
    Deliver,
    /// Sleep this long before delivering (a slow link).
    Delay(Duration),
    /// Silently discard the message (a lost packet). The receiver will
    /// stall until its [`FaultHook::recv_timeout`] expires.
    Drop,
}

/// Deterministic fault-injection hook, consulted by every stage worker.
///
/// All methods have no-op defaults; the trainer only consults the hook at
/// all when one is installed, so fault-free training is unaffected.
pub trait FaultHook: Send + Sync {
    /// Called before each scheduled op. Return [`FaultAction::Kill`] to
    /// crash this worker at exactly this point in the schedule.
    fn before_op(&self, _stage: usize, _replica: usize, _op: &Op) -> FaultAction {
        FaultAction::Continue
    }

    /// Called before each forward activation send from `stage` for
    /// minibatch `mb`.
    fn on_forward_send(&self, _stage: usize, _mb: u64) -> SendAction {
        SendAction::Deliver
    }

    /// Called after a checkpoint file is written, with its path. A hook
    /// may corrupt or truncate the file to exercise checkpoint-validation
    /// paths.
    fn on_checkpoint_written(&self, _path: &Path, _stage: usize, _epoch: usize) {}

    /// Receive timeout for blocking channel reads. `None` (the default)
    /// blocks forever, like the fault-free runtime. Hooks that drop
    /// messages should return a bound so stalled workers fail with
    /// [`WorkerError::Stalled`] instead of hanging the pipeline.
    fn recv_timeout(&self) -> Option<Duration> {
        None
    }

    /// Deadline for gradient-sync (all_reduce) waits on replicated
    /// stages. `None` (the default) keeps the trainer's production
    /// deadline; hooks that kill replicas should return a tight bound so
    /// the stranded partners' [`WorkerError::SyncStalled`] surfaces
    /// quickly in tests.
    fn sync_deadline(&self) -> Option<Duration> {
        None
    }
}

/// Typed failure of one stage worker.
///
/// Replaces the panics the workers previously died with; every variant
/// carries enough context to identify the failing worker and the point in
/// the schedule where it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerError {
    /// The upstream peer disconnected while this stage awaited an
    /// activation for minibatch `mb`.
    UpstreamLost {
        /// Failing stage.
        stage: usize,
        /// Minibatch being awaited.
        mb: u64,
    },
    /// The downstream peer disconnected while this stage awaited a
    /// gradient for minibatch `mb`.
    DownstreamLost {
        /// Failing stage.
        stage: usize,
        /// Minibatch being awaited.
        mb: u64,
    },
    /// A send to a peer failed because its receiver is gone.
    PeerSendFailed {
        /// Failing stage.
        stage: usize,
        /// Minibatch being sent.
        mb: u64,
        /// True when the failed send was a backward-pass gradient.
        backward: bool,
    },
    /// No message arrived within the fault hook's receive timeout.
    Stalled {
        /// Failing stage.
        stage: usize,
        /// Minibatch being awaited.
        mb: u64,
    },
    /// Gradient sync across stage replicas failed: a partner replica died
    /// mid-round (poisoning the group) or the sync deadline expired. The
    /// replicated stage can no longer make progress, so this cascades
    /// teardown exactly like a channel disconnect.
    SyncStalled {
        /// Failing stage.
        stage: usize,
        /// Replica that observed the failure.
        replica: usize,
        /// Minibatch whose update was being synchronized.
        mb: u64,
        /// The underlying [`crate::sync::SyncError`], rendered.
        reason: String,
    },
    /// A vertical-sync weight version needed for a backward or forward
    /// pass was not retained.
    VersionMissing {
        /// Failing stage.
        stage: usize,
        /// Minibatch involved.
        mb: u64,
        /// The missing version tag.
        version: u64,
    },
    /// Writing an epoch-boundary checkpoint failed.
    CheckpointWrite {
        /// Failing stage.
        stage: usize,
        /// Epoch whose checkpoint failed.
        epoch: usize,
        /// Underlying error rendered to a string (io errors aren't `Clone`).
        message: String,
    },
    /// Killed by fault injection ([`FaultAction::Kill`]).
    Killed {
        /// Killed stage.
        stage: usize,
        /// Killed replica.
        replica: usize,
        /// Minibatch of the op at which the kill fired (`u64::MAX` for a
        /// flush op).
        mb: u64,
    },
}

impl WorkerError {
    /// The stage the error originated from.
    pub fn stage(&self) -> usize {
        match *self {
            WorkerError::UpstreamLost { stage, .. }
            | WorkerError::DownstreamLost { stage, .. }
            | WorkerError::PeerSendFailed { stage, .. }
            | WorkerError::Stalled { stage, .. }
            | WorkerError::SyncStalled { stage, .. }
            | WorkerError::VersionMissing { stage, .. }
            | WorkerError::CheckpointWrite { stage, .. }
            | WorkerError::Killed { stage, .. } => stage,
        }
    }

    /// Whether this error is the injected fault itself (as opposed to
    /// collateral damage on surviving workers).
    pub fn is_injected(&self) -> bool {
        matches!(self, WorkerError::Killed { .. })
    }
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::UpstreamLost { stage, mb } => {
                write!(f, "stage {stage}: upstream lost while awaiting act mb {mb}")
            }
            WorkerError::DownstreamLost { stage, mb } => write!(
                f,
                "stage {stage}: downstream lost while awaiting grad mb {mb}"
            ),
            WorkerError::PeerSendFailed {
                stage,
                mb,
                backward,
            } => write!(
                f,
                "stage {stage}: {} send for mb {mb} failed (peer gone)",
                if *backward { "gradient" } else { "activation" }
            ),
            WorkerError::Stalled { stage, mb } => {
                write!(f, "stage {stage}: stalled awaiting mb {mb} (recv timeout)")
            }
            WorkerError::SyncStalled {
                stage,
                replica,
                mb,
                reason,
            } => write!(
                f,
                "stage {stage} replica {replica}: gradient sync for mb {mb} failed: {reason}"
            ),
            WorkerError::VersionMissing { stage, mb, version } => write!(
                f,
                "stage {stage}: weight version {version} for mb {mb} not retained"
            ),
            WorkerError::CheckpointWrite {
                stage,
                epoch,
                message,
            } => write!(
                f,
                "stage {stage}: checkpoint write (epoch {epoch}): {message}"
            ),
            WorkerError::Killed { stage, replica, mb } => write!(
                f,
                "stage {stage} replica {replica}: killed by fault injection at mb {mb}"
            ),
        }
    }
}

impl std::error::Error for WorkerError {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;
    impl FaultHook for Noop {}

    #[test]
    fn default_hook_is_inert() {
        let h = Noop;
        assert_eq!(
            h.before_op(0, 0, &Op::Forward { mb: 3 }),
            FaultAction::Continue
        );
        assert_eq!(h.on_forward_send(0, 3), SendAction::Deliver);
        assert_eq!(h.recv_timeout(), None);
    }

    #[test]
    fn error_reports_origin_stage() {
        let e = WorkerError::Killed {
            stage: 2,
            replica: 0,
            mb: 37,
        };
        assert_eq!(e.stage(), 2);
        assert!(e.is_injected());
        assert!(e.to_string().contains("killed"));
        let e = WorkerError::UpstreamLost { stage: 1, mb: 5 };
        assert!(!e.is_injected());
        assert_eq!(e.stage(), 1);
    }
}
