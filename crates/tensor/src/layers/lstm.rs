//! Long short-term memory layer with explicit backpropagation through time.

use super::{Layer, Param, Slot};
use crate::init;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Cached per-timestep state saved by the forward pass.
struct StepCache {
    x: Tensor,      // [b, in]
    h_prev: Tensor, // [b, hidden]
    c_prev: Tensor, // [b, hidden]
    gates: Tensor,  // [b, 4*hidden] post-activation (i, f, g, o)
    c: Tensor,      // [b, hidden]
}

/// A single-layer unidirectional LSTM over `[batch, seq, in]` inputs,
/// producing `[batch, seq, hidden]` outputs (zero initial state).
///
/// Gate layout in the fused weight matrices is `(i, f, g, o)`:
///
/// ```text
/// i = σ(x·W_xi + h·W_hi + b_i)      f = σ(x·W_xf + h·W_hf + b_f)
/// g = tanh(x·W_xg + h·W_hg + b_g)   o = σ(x·W_xo + h·W_ho + b_o)
/// c' = f ⊙ c + i ⊙ g                h' = o ⊙ tanh(c')
/// ```
///
/// The backward pass is full BPTT; as with every layer in this crate, all
/// forward state is cached per [`Slot`] so several minibatches can be in
/// flight through a pipeline simultaneously.
pub struct Lstm {
    name: String,
    w_x: Param,  // [in, 4*hidden]
    w_h: Param,  // [hidden, 4*hidden]
    bias: Param, // [4*hidden]
    in_features: usize,
    hidden: usize,
    saved: HashMap<Slot, Vec<StepCache>>,
}

impl Lstm {
    /// Xavier-initialized LSTM; forget-gate bias starts at 1 (standard
    /// practice for trainability).
    pub fn new(in_features: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let w_x = init::xavier(in_features, 4 * hidden, rng);
        let w_h = init::xavier(hidden, 4 * hidden, rng);
        let mut bias = Tensor::zeros(&[4 * hidden]);
        for f in hidden..2 * hidden {
            bias.data_mut()[f] = 1.0;
        }
        Lstm {
            name: format!("lstm{in_features}x{hidden}"),
            w_x: Param::new("w_x", w_x),
            w_h: Param::new("w_h", w_h),
            bias: Param::new("bias", bias),
            in_features,
            hidden,
            saved: HashMap::new(),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + (-x).exp())
    }

    /// One forward step for a `[b, in]` slice.
    fn step(&self, x: &Tensor, h_prev: &Tensor, c_prev: &Tensor) -> StepCache {
        let b = x.rows();
        let hn = self.hidden;
        // pre = x·W_x + h·W_h + bias (recurrent product accumulated
        // directly into pre by the kernel — no temporary).
        let mut pre = x.matmul(&self.w_x.value);
        pre.add_matmul(h_prev, &self.w_h.value);
        let bias = self.bias.value.data();
        for r in 0..b {
            for cidx in 0..4 * hn {
                *pre.at_mut(r, cidx) += bias[cidx];
            }
        }
        // Activations: σ on i,f,o; tanh on g.
        let mut gates = pre;
        let mut c = Tensor::zeros(&[b, hn]);
        for r in 0..b {
            for j in 0..hn {
                let i = Self::sigmoid(gates.at(r, j));
                let f = Self::sigmoid(gates.at(r, hn + j));
                let g = gates.at(r, 2 * hn + j).tanh();
                let o = Self::sigmoid(gates.at(r, 3 * hn + j));
                *gates.at_mut(r, j) = i;
                *gates.at_mut(r, hn + j) = f;
                *gates.at_mut(r, 2 * hn + j) = g;
                *gates.at_mut(r, 3 * hn + j) = o;
                *c.at_mut(r, j) = f * c_prev.at(r, j) + i * g;
            }
        }
        StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            gates,
            c,
        }
    }
}

impl Layer for Lstm {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, slot: Slot) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "{}: want [b, seq, in], got {s:?}", self.name);
        let (b, t, d) = (s[0], s[1], s[2]);
        assert_eq!(d, self.in_features, "{}: feature mismatch", self.name);
        let hn = self.hidden;
        let mut h = Tensor::zeros(&[b, hn]);
        let mut c = Tensor::zeros(&[b, hn]);
        let mut caches = Vec::with_capacity(t);
        let mut out = Tensor::zeros(&[b, t, hn]);
        for step in 0..t {
            // Slice timestep `step`: [b, d].
            let mut xs = Tensor::zeros(&[b, d]);
            for r in 0..b {
                let src = (r * t + step) * d;
                let dst = r * d;
                xs.data_mut()[dst..dst + d].copy_from_slice(&x.data()[src..src + d]);
            }
            let cache = self.step(&xs, &h, &c);
            xs.recycle();
            c.recycle();
            c = cache.c.clone();
            // h = o ⊙ tanh(c)
            let mut ht = Tensor::zeros(&[b, hn]);
            for r in 0..b {
                for j in 0..hn {
                    *ht.at_mut(r, j) = cache.gates.at(r, 3 * hn + j) * cache.c.at(r, j).tanh();
                }
            }
            for r in 0..b {
                let dst = (r * t + step) * hn;
                out.data_mut()[dst..dst + hn].copy_from_slice(&ht.data()[r * hn..(r + 1) * hn]);
            }
            h.recycle();
            h = ht;
            caches.push(cache);
        }
        self.saved.insert(slot, caches);
        out
    }

    fn backward(&mut self, grad_out: &Tensor, slot: Slot) -> Tensor {
        let caches = self
            .saved
            .remove(&slot)
            .unwrap_or_else(|| panic!("{}: no saved state for slot {slot}", self.name));
        let t = caches.len();
        let (b, hn, d) = (caches[0].x.rows(), self.hidden, self.in_features);
        assert_eq!(grad_out.shape(), &[b, t, hn]);

        let mut dx = Tensor::zeros(&[b, t, d]);
        let mut dh_next = Tensor::zeros(&[b, hn]);
        let mut dc_next = Tensor::zeros(&[b, hn]);
        for step in (0..t).rev() {
            let cache = &caches[step];
            // dh = grad_out[:, step, :] + dh from the next timestep.
            let mut dh = dh_next.clone();
            for r in 0..b {
                for j in 0..hn {
                    *dh.at_mut(r, j) += grad_out.data()[(r * t + step) * hn + j];
                }
            }
            // Through h = o ⊙ tanh(c) and c = f ⊙ c_prev + i ⊙ g.
            let mut dpre = Tensor::zeros(&[b, 4 * hn]);
            let mut dc = dc_next.clone();
            let mut dc_prev = Tensor::zeros(&[b, hn]);
            for r in 0..b {
                for j in 0..hn {
                    let i = cache.gates.at(r, j);
                    let f = cache.gates.at(r, hn + j);
                    let g = cache.gates.at(r, 2 * hn + j);
                    let o = cache.gates.at(r, 3 * hn + j);
                    let tc = cache.c.at(r, j).tanh();
                    let dh_v = dh.at(r, j);
                    *dc.at_mut(r, j) += dh_v * o * (1.0 - tc * tc);
                    let dc_v = dc.at(r, j);
                    // Gate pre-activation gradients.
                    *dpre.at_mut(r, j) = dc_v * g * i * (1.0 - i); // di
                    *dpre.at_mut(r, hn + j) = dc_v * cache.c_prev.at(r, j) * f * (1.0 - f); // df
                    *dpre.at_mut(r, 2 * hn + j) = dc_v * i * (1.0 - g * g); // dg
                    *dpre.at_mut(r, 3 * hn + j) = dh_v * tc * o * (1.0 - o); // do
                    *dc_prev.at_mut(r, j) = dc_v * f;
                }
            }
            // Parameter gradients: dW_x += xᵀ·dpre ; dW_h += h_prevᵀ·dpre ;
            // db += column sums. Transposes fold into GEMM packing and the
            // accumulation happens inside the kernel.
            self.w_x.grad.add_matmul_tn(&cache.x, &dpre);
            self.w_h.grad.add_matmul_tn(&cache.h_prev, &dpre);
            {
                let db = self.bias.grad.data_mut();
                for r in 0..b {
                    for cidx in 0..4 * hn {
                        db[cidx] += dpre.at(r, cidx);
                    }
                }
            }
            // Input and recurrent gradients (transposes folded into GEMM).
            let dxs = dpre.matmul_nt(&self.w_x.value);
            for r in 0..b {
                let dst = (r * t + step) * d;
                dx.data_mut()[dst..dst + d].copy_from_slice(&dxs.data()[r * d..(r + 1) * d]);
            }
            dxs.recycle();
            dh.recycle();
            dh_next.recycle();
            dh_next = dpre.matmul_nt(&self.w_h.value);
            dpre.recycle();
            dc.recycle();
            dc_next.recycle();
            dc_next = dc_prev;
        }
        dx
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w_x, &self.w_h, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_x, &mut self.w_h, &mut self.bias]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1], self.hidden]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> f64 {
        // input_shape is per-sample [seq, in].
        let t = input_shape[0];
        2.0 * t as f64 * (4 * self.hidden * (self.in_features + self.hidden)) as f64
    }

    fn clear_slots(&mut self) {
        self.saved.clear();
    }

    fn clear_slot(&mut self, slot: Slot) {
        self.saved.remove(&slot);
    }

    fn cached_bytes(&self) -> u64 {
        self.saved
            .values()
            .flatten()
            .map(|c| {
                (c.x.len() + c.h_prev.len() + c.c_prev.len() + c.gates.len() + c.c.len()) as u64 * 4
            })
            .sum()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(Lstm {
            name: self.name.clone(),
            w_x: self.w_x.clone(),
            w_h: self.w_h.clone(),
            bias: self.bias.clone(),
            in_features: self.in_features,
            hidden: self.hidden,
            saved: HashMap::new(),
        })
    }
}

/// Select the last timestep of a `[batch, seq, features]` sequence,
/// producing `[batch, features]` — the usual bridge from a recurrent trunk
/// to a classifier head.
#[derive(Clone)]
pub struct SeqLast {
    saved_shape: HashMap<Slot, Vec<usize>>,
}

impl SeqLast {
    /// New selector.
    pub fn new() -> Self {
        SeqLast {
            saved_shape: HashMap::new(),
        }
    }
}

impl Default for SeqLast {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for SeqLast {
    fn name(&self) -> &str {
        "seq_last"
    }

    fn forward(&mut self, x: &Tensor, slot: Slot) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "seq_last wants [b, seq, f]");
        let (b, t, f) = (s[0], s[1], s[2]);
        let mut out = Tensor::zeros(&[b, f]);
        for r in 0..b {
            let src = (r * t + (t - 1)) * f;
            out.data_mut()[r * f..(r + 1) * f].copy_from_slice(&x.data()[src..src + f]);
        }
        self.saved_shape.insert(slot, s.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor, slot: Slot) -> Tensor {
        let s = self
            .saved_shape
            .remove(&slot)
            .unwrap_or_else(|| panic!("seq_last: no saved shape for slot {slot}"));
        let (b, t, f) = (s[0], s[1], s[2]);
        let mut dx = Tensor::zeros(&s);
        for r in 0..b {
            let dst = (r * t + (t - 1)) * f;
            dx.data_mut()[dst..dst + f].copy_from_slice(&grad_out.data()[r * f..(r + 1) * f]);
        }
        dx
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[2]]
    }

    fn clear_slots(&mut self) {
        self.saved_shape.clear();
    }

    fn clear_slot(&mut self, slot: Slot) {
        self.saved_shape.remove(&slot);
    }

    fn cached_bytes(&self) -> u64 {
        self.saved_shape.values().map(|s| s.len() as u64 * 8).sum()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::init::rng;

    #[test]
    fn output_shape_is_b_t_h() {
        let mut l = Lstm::new(3, 5, &mut rng(1));
        let y = l.forward(&Tensor::zeros(&[2, 4, 3]), 0);
        assert_eq!(y.shape(), &[2, 4, 5]);
    }

    #[test]
    fn zero_input_zero_bias_gives_zero_cell() {
        let mut l = Lstm::new(2, 3, &mut rng(2));
        l.bias.value = Tensor::zeros(&[12]);
        let y = l.forward(&Tensor::zeros(&[1, 3, 2]), 0);
        // g = tanh(0) = 0 ⇒ c stays 0 ⇒ h = o·tanh(0) = 0.
        assert!(y.data().iter().all(|&v| v.abs() < 1e-6));
    }

    #[test]
    fn gradcheck_short_sequence() {
        let mut l = Lstm::new(3, 4, &mut rng(3));
        check_layer_gradients(&mut l, &[2, 3, 3], 7);
    }

    #[test]
    fn gradcheck_single_step() {
        let mut l = Lstm::new(2, 2, &mut rng(4));
        check_layer_gradients(&mut l, &[3, 1, 2], 8);
    }

    #[test]
    fn gradcheck_nonsquare_crossing_tile_edges() {
        // in=9, hidden=5 puts the fused [b, 4·hidden] products off the
        // 8×8 micro-kernel grid in every dimension.
        let mut l = Lstm::new(9, 5, &mut rng(8));
        check_layer_gradients(&mut l, &[3, 2, 9], 9);
    }

    #[test]
    fn slots_are_independent() {
        let mut l = Lstm::new(2, 3, &mut rng(5));
        let a = Tensor::full(&[1, 2, 2], 0.5);
        let b = Tensor::full(&[1, 2, 2], -0.5);
        let ya = l.forward(&a, 0);
        let _yb = l.forward(&b, 1);
        // Backward slot 0 must consume slot 0's cache without interference.
        let g = Tensor::full(&[1, 2, 3], 1.0);
        let dxa = l.backward(&g, 0);
        assert_eq!(dxa.shape(), &[1, 2, 2]);
        // Slot 1 still consumable.
        let dxb = l.backward(&g, 1);
        assert_eq!(dxb.shape(), &[1, 2, 2]);
        assert_ne!(ya, l.forward(&b, 2));
    }

    #[test]
    fn param_count_matches_formula() {
        let l = Lstm::new(7, 11, &mut rng(6));
        assert_eq!(l.param_count(), 7 * 44 + 11 * 44 + 44);
    }

    #[test]
    fn seq_last_selects_final_step() {
        let mut s = SeqLast::new();
        let x = Tensor::from_vec(&[1, 3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let y = s.forward(&x, 0);
        assert_eq!(y.data(), &[5.0, 6.0]);
        let dx = s.backward(&Tensor::from_slice(&[7.0, 8.0]).reshape(&[1, 2]), 0);
        assert_eq!(dx.data(), &[0., 0., 0., 0., 7., 8.]);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let l = Lstm::new(2, 4, &mut rng(7));
        let b = l.bias.value.data();
        assert!(b[4..8].iter().all(|&v| v == 1.0));
        assert!(b[0..4].iter().all(|&v| v == 0.0));
    }
}
