//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored serde's simplified data model
//! (`Serialize::to_value` / `Deserialize::from_value`) for named structs,
//! unit structs, and enums with unit / tuple / struct variants — the full
//! set of shapes this workspace derives. No `syn`/`quote`: the input
//! `TokenStream` is walked directly and the impl is emitted as a string.
//!
//! JSON conventions match serde's externally-tagged defaults:
//! struct → object; unit variant → `"Name"`; newtype variant →
//! `{"Name": value}`; tuple variant → `{"Name": [..]}`; struct variant →
//! `{"Name": {..}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, VariantShape)>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let mut body = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "__m.insert(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_value(&self.{f}));"
                );
            }
            body.push_str("::serde::Value::Object(__m)");
            impl_block(
                name,
                "Serialize",
                &format!("fn to_value(&self) -> ::serde::Value {{ {body} }}"),
            )
        }
        Input::UnitStruct { name } => impl_block(
            name,
            "Serialize",
            "fn to_value(&self) -> ::serde::Value { ::serde::Value::Object(::serde::Map::new()) }",
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            arms,
                            "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            arms,
                            "{name}::{v}(__f0) => {{ \
                             let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Serialize::to_value(__f0)); \
                             ::serde::Value::Object(__m) }},"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{v}({}) => {{ \
                             let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Array(vec![{}])); \
                             ::serde::Value::Object(__m) }},",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut __i = ::serde::Map::new();");
                        for f in fields {
                            let _ = write!(
                                inner,
                                " __i.insert(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value({f}));"
                            );
                        }
                        let _ = writeln!(
                            arms,
                            "{name}::{v} {{ {binds} }} => {{ {inner} \
                             let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(__i)); \
                             ::serde::Value::Object(__m) }},"
                        );
                    }
                }
            }
            impl_block(
                name,
                "Serialize",
                &format!("fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}"),
            )
        }
    };
    code.parse()
        .expect("serde_derive: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let mut body = format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::Error::msg(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                let _ = writeln!(body, "{f}: {},", field_expr(name, "__m", f));
            }
            body.push_str("})");
            impl_block(name, "Deserialize", &from_value_fn(&body))
        }
        Input::UnitStruct { name } => impl_block(
            name,
            "Deserialize",
            &from_value_fn(&format!("let _ = __v; ::std::result::Result::Ok({name})")),
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, shape) in variants {
                match shape {
                    VariantShape::Unit => {
                        let _ = writeln!(
                            unit_arms,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                        );
                    }
                    VariantShape::Tuple(1) => {
                        let _ = writeln!(
                            payload_arms,
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(__p)?)),"
                        );
                    }
                    VariantShape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        let _ = writeln!(
                            payload_arms,
                            "\"{v}\" => {{ \
                             let __a = __p.as_array().ok_or_else(|| \
                             ::serde::Error::msg(\"expected array for {name}::{v}\"))?; \
                             if __a.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(\"wrong arity for {name}::{v}\")); }} \
                             ::std::result::Result::Ok({name}::{v}({})) }},",
                            elems.join(", ")
                        );
                    }
                    VariantShape::Struct(fields) => {
                        let mut inner = String::new();
                        for f in fields {
                            let _ = writeln!(inner, "{f}: {},", field_expr(name, "__i", f));
                        }
                        let _ = writeln!(
                            payload_arms,
                            "\"{v}\" => {{ \
                             let __i = __p.as_object().ok_or_else(|| \
                             ::serde::Error::msg(\"expected object for {name}::{v}\"))?; \
                             ::std::result::Result::Ok({name}::{v} {{ {inner} }}) }},"
                        );
                    }
                }
            }
            let body = format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant {{__other}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __p) = __m.iter().next().unwrap();\n\
                 match __k.as_str() {{\n\
                 {payload_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown variant {{__other}} for {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected string or single-key object for {name}\")),\n\
                 }}"
            );
            impl_block(name, "Deserialize", &from_value_fn(&body))
        }
    };
    code.parse()
        .expect("serde_derive: generated Deserialize impl did not parse")
}

fn impl_block(name: &str, trait_name: &str, body: &str) -> String {
    format!("impl ::serde::{trait_name} for {name} {{ {body} }}")
}

fn from_value_fn(body: &str) -> String {
    format!(
        "fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}"
    )
}

fn field_expr(type_name: &str, map_var: &str, field: &str) -> String {
    format!(
        "::serde::Deserialize::from_value({map_var}.get(\"{field}\")\
         .unwrap_or(&::serde::Value::Null))\
         .map_err(|e| e.context(\"{type_name}.{field}\"))?"
    )
}

// ---- input parsing (no syn) -------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, got {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected type name, got {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!(
                "serde_derive stand-in supports named-field or unit structs only ({name}: {other:?})"
            ),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

/// Advance past attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected field name, got {t}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            t => panic!("serde_derive: expected `:` after field `{field}`, got {t}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Advance past a type, stopping after the field-separating comma (or at
/// end of stream). Commas nested in `<...>` belong to the type; commas in
/// parens/brackets are inside `Group`s and invisible at this level.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => panic!("serde_derive: expected variant name, got {t}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}
