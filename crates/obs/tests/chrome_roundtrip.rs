//! The Chrome exporter and parser must be exact inverses on the event
//! stream: `parse(render(snap))` recovers every span, instant, epoch tag
//! and track byte-faithfully, so `render(parse(doc)) == doc` for any
//! exporter-produced document — including the derived flow events, which
//! the parser skips and the re-render re-derives deterministically.

use pipedream_obs::{
    parse_chrome_trace, render_chrome_trace, Event, SpanKind, TraceSnapshot, TrackEvents,
};
use proptest::prelude::*;

/// Any span kind, exercised across the full tag space (instants too).
fn arb_kind() -> impl Strategy<Value = SpanKind> {
    (0u8..16, 0u64..4).prop_map(|(k, mb)| match k {
        0 => SpanKind::Fwd { mb },
        1 => SpanKind::Bwd { mb },
        2 => SpanKind::RecvWait { mb },
        3 => SpanKind::SendWait { mb },
        4 => SpanKind::StashPush { mb },
        5 => SpanKind::StashPop { mb },
        6 => SpanKind::GradSync,
        7 => SpanKind::Checkpoint,
        8 => SpanKind::Stalled,
        9 => SpanKind::Fault,
        10 => SpanKind::Recovery,
        11 => SpanKind::Reconfig,
        12 => SpanKind::Recompute { mb },
        13 => SpanKind::SyncDeposit { mb },
        14 => SpanKind::SyncRelease { mb },
        _ => SpanKind::OptStep { mb },
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    (arb_kind(), 0u64..50_000_000, 0u64..5_000_000, 0u32..3).prop_map(
        |(kind, start, dur, epoch)| {
            let mut ev = Event::span(
                kind,
                start,
                if kind.is_instant_kind() {
                    start
                } else {
                    start + dur
                },
            );
            ev.epoch = epoch;
            ev
        },
    )
}

/// Instant kinds get zero duration so they render as `ph:"i"`.
trait InstantKind {
    fn is_instant_kind(&self) -> bool;
}
impl InstantKind for SpanKind {
    fn is_instant_kind(&self) -> bool {
        matches!(
            self,
            SpanKind::StashPush { .. }
                | SpanKind::StashPop { .. }
                | SpanKind::SyncDeposit { .. }
                | SpanKind::SyncRelease { .. }
                | SpanKind::Fault
                | SpanKind::Recovery
                | SpanKind::Reconfig
        )
    }
}

fn arb_track(i: usize) -> impl Strategy<Value = TrackEvents> {
    proptest::collection::vec(arb_event(), 0..24).prop_map(move |mut events| {
        events.sort_by_key(|e| (e.start_ns, e.end_ns));
        TrackEvents {
            name: format!("stage{i}.replica0"),
            stage: Some(i),
            events,
            dropped: 0,
        }
    })
}

fn arb_snapshot() -> impl Strategy<Value = TraceSnapshot> {
    (arb_track(0), arb_track(1), any::<bool>()).prop_map(|(t0, t1, supervisor)| {
        let mut tracks = vec![t0, t1];
        if supervisor {
            tracks.push(TrackEvents {
                name: "supervisor".into(),
                stage: None,
                events: vec![Event::span(SpanKind::Fault, 123_456, 123_456)],
                dropped: 0,
            });
        }
        TraceSnapshot { tracks }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn chrome_render_parse_is_byte_faithful(snap in arb_snapshot()) {
        let doc = render_chrome_trace(&snap);
        let back = parse_chrome_trace(&doc).expect("exporter output must parse");

        // Every track, span, instant and epoch survives exactly.
        prop_assert_eq!(back.tracks.len(), snap.tracks.len());
        for (b, s) in back.tracks.iter().zip(snap.tracks.iter()) {
            prop_assert_eq!(&b.name, &s.name);
            prop_assert_eq!(b.stage, s.stage);
            prop_assert_eq!(&b.events, &s.events);
        }

        // And the re-render — including re-derived flow events — is
        // byte-identical to the original document.
        let again = render_chrome_trace(&back);
        prop_assert_eq!(again, doc);
    }
}
