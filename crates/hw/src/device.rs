//! Accelerator device model.
//!
//! A [`Device`] abstracts a GPU as a sustained floating-point throughput plus
//! a memory capacity. Compute time for a layer is
//! `flops / (peak_flops × efficiency)`; the efficiency factor folds in kernel
//! launch overhead, memory-bandwidth limits, and framework overhead that keep
//! real training well below peak FLOPs.

use serde::{Deserialize, Serialize};

/// Numeric precision used for training.
///
/// The paper trains in fp32 throughout and measures fp16 only for the
/// Figure 12 communication-overhead comparison, where fp16 halves bytes on
/// the wire but speeds compute up even more (tensor cores), so the *relative*
/// communication overhead grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit IEEE floats (4 bytes/element). The paper's default.
    Fp32,
    /// 16-bit floats (2 bytes/element) with tensor-core acceleration.
    Fp16,
}

impl Precision {
    /// Bytes occupied by one tensor element at this precision.
    pub fn bytes_per_element(self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
        }
    }

    /// Multiplier applied to a device's fp32 throughput at this precision.
    ///
    /// Mixed-precision training on V100-class hardware is roughly 2–4× faster
    /// than fp32 end to end; we use 3× (peak tensor-core speedup is 8× but
    /// real models see far less).
    pub fn speedup(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 3.0,
        }
    }
}

/// An accelerator: compute throughput + memory capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable name, e.g. `"V100"`.
    pub name: String,
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak sustained during real training (0, 1].
    pub efficiency: f64,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
}

impl Device {
    /// NVIDIA V100 (16 GB): 15.7 TFLOPS fp32.
    ///
    /// The 0.9 efficiency factor calibrates naive FLOP counts against real
    /// measured training throughput (which benefits from algorithmic
    /// speedups like Winograd convolutions that a FLOP count can't see).
    pub fn v100() -> Self {
        Device {
            name: "V100".into(),
            peak_flops: 15.7e12,
            efficiency: 0.9,
            mem_bytes: 16 << 30,
        }
    }

    /// NVIDIA GTX 1080 Ti (11 GB): 11.3 TFLOPS fp32.
    pub fn gtx_1080ti() -> Self {
        Device {
            name: "1080Ti".into(),
            peak_flops: 11.3e12,
            efficiency: 0.9,
            mem_bytes: 11 << 30,
        }
    }

    /// NVIDIA Titan X (12 GB): 6.7 TFLOPS fp32 (Maxwell-era card used in the
    /// paper's private Cluster-C).
    pub fn titan_x() -> Self {
        Device {
            name: "TitanX".into(),
            peak_flops: 6.7e12,
            efficiency: 0.9,
            mem_bytes: 12 << 30,
        }
    }

    /// Sustained throughput in FLOP/s at the given precision.
    pub fn sustained_flops(&self, precision: Precision) -> f64 {
        self.peak_flops * self.efficiency * precision.speedup()
    }

    /// Time in seconds to execute `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64, precision: Precision) -> f64 {
        flops / self.sustained_flops(precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_faster_than_1080ti() {
        let v = Device::v100();
        let g = Device::gtx_1080ti();
        assert!(v.sustained_flops(Precision::Fp32) > g.sustained_flops(Precision::Fp32));
    }

    #[test]
    fn compute_time_scales_linearly_with_flops() {
        let d = Device::v100();
        let t1 = d.compute_time(1e12, Precision::Fp32);
        let t2 = d.compute_time(2e12, Precision::Fp32);
        assert!((t2 / t1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fp16_is_faster_and_smaller() {
        let d = Device::v100();
        assert!(d.compute_time(1e12, Precision::Fp16) < d.compute_time(1e12, Precision::Fp32));
        assert!(Precision::Fp16.bytes_per_element() < Precision::Fp32.bytes_per_element());
    }

    #[test]
    fn memory_capacities_match_table_2() {
        assert_eq!(Device::v100().mem_bytes, 16 << 30);
        assert_eq!(Device::gtx_1080ti().mem_bytes, 11 << 30);
        assert_eq!(Device::titan_x().mem_bytes, 12 << 30);
    }
}
