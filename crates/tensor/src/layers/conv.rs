//! 2-D convolution: im2col + GEMM, with the direct algorithm retained as
//! the differential-testing reference.
//!
//! The fast path lowers each batch element to a column matrix
//! `[oh·ow, in_ch·k·k]` (column order `(ic, ky, kx)`, matching the weight
//! layout) and runs the three convolution products through [`crate::gemm`]:
//!
//! * forward: `out_b = W × colsᵀ` (transpose folded into packing), bias
//!   added after the product;
//! * backward: `dW += g_b × cols`, `db` from row sums,
//!   `dcols = g_bᵀ × W` followed by a col2im scatter-add into `dx`.
//!
//! [`conv2d_direct`] / [`conv2d_direct_backward`] are the seed 6-deep
//! loops, kept verbatim so `tests/kernel_equiv.rs` can pin the GEMM
//! formulation against them. Note the direct forward seeds its
//! accumulator with the bias (so bias participates at a different point
//! in the summation order); the two paths therefore agree to relative
//! tolerance, not bit-for-bit.

use super::{Layer, Param, Slot};
use crate::gemm::{self, Backend};
use crate::tensor::Tensor;
use crate::{init, pool};
use rand::rngs::StdRng;
use std::collections::HashMap;

/// Direct (6-deep loop) convolution forward — the reference kernel.
///
/// `x: [b, c, h, w]`, `weight: [out_ch, c, k, k]`, `bias: [out_ch]`.
pub fn conv2d_direct(
    x: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    padding: usize,
) -> Tensor {
    let (b, c, h, w) = dims4(x);
    let (out_ch, k) = (weight.shape()[0], weight.shape()[2]);
    let (oh, ow) = out_hw(h, w, k, stride, padding);
    let mut out = Tensor::zeros(&[b, out_ch, oh, ow]);
    let wd = weight.data();
    let bd = bias.data();
    let xd = x.data();
    let od = out.data_mut();
    for bi in 0..b {
        for oc in 0..out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bd[oc];
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((bi * c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * c + ic) * k + ky) * k + kx;
                                acc += xd[xi] * wd[wi];
                            }
                        }
                    }
                    od[((bi * out_ch + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    out
}

/// Direct convolution backward — returns `(dx, dw, db)`.
pub fn conv2d_direct_backward(
    x: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    stride: usize,
    padding: usize,
) -> (Tensor, Tensor, Tensor) {
    let (b, c, h, w) = dims4(x);
    let (out_ch, k) = (weight.shape()[0], weight.shape()[2]);
    let (oh, ow) = out_hw(h, w, k, stride, padding);
    assert_eq!(grad_out.shape(), &[b, out_ch, oh, ow]);
    let mut dx = Tensor::zeros(&[b, c, h, w]);
    let mut dw = Tensor::zeros(weight.shape());
    let mut db = Tensor::zeros(&[out_ch]);
    let xd = x.data();
    let gd = grad_out.data();
    let wd = weight.data();
    let dwd = dw.data_mut();
    let dbd = db.data_mut();
    let dxd = dx.data_mut();
    for bi in 0..b {
        for oc in 0..out_ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[((bi * out_ch + oc) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    dbd[oc] += g;
                    for ic in 0..c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let xi = ((bi * c + ic) * h + iy as usize) * w + ix as usize;
                                let wi = ((oc * c + ic) * k + ky) * k + kx;
                                dwd[wi] += g * xd[xi];
                                dxd[xi] += g * wd[wi];
                            }
                        }
                    }
                }
            }
        }
    }
    (dx, dw, db)
}

fn dims4(x: &Tensor) -> (usize, usize, usize, usize) {
    let s = x.shape();
    assert_eq!(s.len(), 4, "conv wants [b,c,h,w], got {s:?}");
    (s[0], s[1], s[2], s[3])
}

fn out_hw(h: usize, w: usize, k: usize, stride: usize, padding: usize) -> (usize, usize) {
    (
        (h + 2 * padding - k) / stride + 1,
        (w + 2 * padding - k) / stride + 1,
    )
}

/// Lower one batch element into `cols: [oh*ow, c*k*k]` (row = output
/// position, column = `(ic, ky, kx)` to match the weight layout).
/// Out-of-bounds (padding) taps are left at zero, so `cols` must arrive
/// zero-filled.
#[allow(clippy::too_many_arguments)]
fn im2col_rows(
    cols: &mut [f32],
    xb: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
) {
    let ckk = c * k * k;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &mut cols[(oy * ow + ox) * ckk..(oy * ow + ox + 1) * ckk];
            for ic in 0..c {
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = (ic * h + iy as usize) * w;
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        row[(ic * k + ky) * k + kx] = xb[src_row + ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatter-add `dcols: [oh*ow, c*k*k]` back into one batch element of the
/// input gradient — the adjoint of [`im2col_rows`].
#[allow(clippy::too_many_arguments)]
fn col2im_rows(
    dxb: &mut [f32],
    dcols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    padding: usize,
    oh: usize,
    ow: usize,
) {
    let ckk = c * k * k;
    for oy in 0..oh {
        for ox in 0..ow {
            let row = &dcols[(oy * ow + ox) * ckk..(oy * ow + ox + 1) * ckk];
            for ic in 0..c {
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_row = (ic * h + iy as usize) * w;
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dxb[dst_row + ix as usize] += row[(ic * k + ky) * k + kx];
                    }
                }
            }
        }
    }
}

/// 2-D convolution over `[batch, in_ch, h, w]` inputs with square kernels,
/// stride and zero padding. Weight layout `[out_ch, in_ch, k, k]`.
#[derive(Clone)]
pub struct Conv2d {
    name: String,
    weight: Param,
    bias: Param,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    saved_input: HashMap<Slot, Tensor>,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        let limit = (6.0 / fan_in as f32).sqrt();
        let weight = init::uniform(&[out_ch, in_ch, kernel, kernel], limit, rng);
        Conv2d {
            name: format!("conv{in_ch}x{out_ch}k{kernel}"),
            weight: Param::new("weight", weight),
            bias: Param::new("bias", Tensor::zeros(&[out_ch])),
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
            saved_input: HashMap::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        out_hw(h, w, self.kernel, self.stride, self.padding)
    }

    fn forward_gemm(&self, x: &Tensor) -> Tensor {
        let (b, c, h, w) = dims4(x);
        let (oh, ow) = self.out_hw(h, w);
        let (k, ohow, ckk) = (self.kernel, oh * ow, c * self.kernel * self.kernel);
        let mut out = Tensor::zeros(&[b, self.out_ch, oh, ow]);
        let wd = self.weight.value.data();
        let bd = self.bias.value.data();
        let xd = x.data();
        let od = out.data_mut();
        let mut cols = pool::take_zeroed(ohow * ckk);
        for bi in 0..b {
            cols.fill(0.0);
            im2col_rows(
                &mut cols,
                &xd[bi * c * h * w..(bi + 1) * c * h * w],
                c,
                h,
                w,
                k,
                self.stride,
                self.padding,
                oh,
                ow,
            );
            let ob = &mut od[bi * self.out_ch * ohow..(bi + 1) * self.out_ch * ohow];
            // out_b [out_ch, ohow] = W [out_ch, ckk] × colsᵀ [ckk, ohow].
            gemm::gemm(ob, wd, &cols, self.out_ch, ckk, ohow, false, true, false);
            for oc in 0..self.out_ch {
                let bias = bd[oc];
                for v in &mut ob[oc * ohow..(oc + 1) * ohow] {
                    *v += bias;
                }
            }
        }
        pool::give(cols);
        out
    }

    fn backward_gemm(&mut self, x: &Tensor, grad_out: &Tensor) -> Tensor {
        let (b, c, h, w) = dims4(x);
        let (oh, ow) = self.out_hw(h, w);
        let (k, ohow, ckk) = (self.kernel, oh * ow, c * self.kernel * self.kernel);
        assert_eq!(grad_out.shape(), &[b, self.out_ch, oh, ow]);
        let mut dx = Tensor::zeros(&[b, c, h, w]);
        let xd = x.data();
        let gd = grad_out.data();
        let wd = self.weight.value.data();
        let dwd = self.weight.grad.data_mut();
        let dbd = self.bias.grad.data_mut();
        let dxd = dx.data_mut();
        let mut cols = pool::take_zeroed(ohow * ckk);
        let mut dcols = pool::take_zeroed(ohow * ckk);
        for bi in 0..b {
            // Re-lower the saved input (cheaper than stashing cols per slot).
            cols.fill(0.0);
            im2col_rows(
                &mut cols,
                &xd[bi * c * h * w..(bi + 1) * c * h * w],
                c,
                h,
                w,
                k,
                self.stride,
                self.padding,
                oh,
                ow,
            );
            let gb = &gd[bi * self.out_ch * ohow..(bi + 1) * self.out_ch * ohow];
            for oc in 0..self.out_ch {
                dbd[oc] += gb[oc * ohow..(oc + 1) * ohow].iter().sum::<f32>();
            }
            // dW [out_ch, ckk] += g_b [out_ch, ohow] × cols [ohow, ckk].
            gemm::gemm(dwd, gb, &cols, self.out_ch, ohow, ckk, false, false, true);
            // dcols [ohow, ckk] = g_bᵀ [ohow, out_ch] × W [out_ch, ckk].
            gemm::gemm(
                &mut dcols,
                gb,
                wd,
                ohow,
                self.out_ch,
                ckk,
                true,
                false,
                false,
            );
            col2im_rows(
                &mut dxd[bi * c * h * w..(bi + 1) * c * h * w],
                &dcols,
                c,
                h,
                w,
                k,
                self.stride,
                self.padding,
                oh,
                ow,
            );
        }
        pool::give(cols);
        pool::give(dcols);
        dx
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, x: &Tensor, slot: Slot) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "{}: want [b,c,h,w], got {s:?}", self.name);
        assert_eq!(s[1], self.in_ch, "{}: channel mismatch", self.name);
        let out = match gemm::thread_backend() {
            Backend::Fast => self.forward_gemm(x),
            Backend::Naive => conv2d_direct(
                x,
                &self.weight.value,
                &self.bias.value,
                self.stride,
                self.padding,
            ),
        };
        self.saved_input.insert(slot, x.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor, slot: Slot) -> Tensor {
        let x = self
            .saved_input
            .remove(&slot)
            .unwrap_or_else(|| panic!("{}: no saved input for slot {slot}", self.name));
        match gemm::thread_backend() {
            Backend::Fast => {
                let dx = self.backward_gemm(&x, grad_out);
                x.recycle();
                dx
            }
            Backend::Naive => {
                let (dx, dw, db) = conv2d_direct_backward(
                    &x,
                    &self.weight.value,
                    grad_out,
                    self.stride,
                    self.padding,
                );
                self.weight.grad.axpy(1.0, &dw);
                self.bias.grad.axpy(1.0, &db);
                x.recycle();
                dw.recycle();
                db.recycle();
                dx
            }
        }
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], self.out_ch, oh, ow]
    }

    fn flops_per_sample(&self, input_shape: &[usize]) -> f64 {
        // input_shape is per-sample [c, h, w].
        let (oh, ow) = self.out_hw(input_shape[1], input_shape[2]);
        2.0 * (self.kernel * self.kernel * self.in_ch) as f64 * (self.out_ch * oh * ow) as f64
    }

    fn clear_slots(&mut self) {
        self.saved_input.clear();
    }

    fn clear_slot(&mut self, slot: Slot) {
        self.saved_input.remove(&slot);
    }

    fn cached_bytes(&self) -> u64 {
        self.saved_input.values().map(|t| t.len() as u64 * 4).sum()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_layer_gradients;
    use crate::init::rng;

    #[test]
    fn identity_kernel_passes_through() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng(0));
        // Force weight to 1 and bias to 0: output == input.
        conv.weight.value = Tensor::full(&[1, 1, 1, 1], 1.0);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = conv.forward(&x, 0);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn output_shape_with_padding_and_stride() {
        let conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng(1));
        assert_eq!(conv.output_shape(&[2, 3, 8, 8]), vec![2, 8, 4, 4]);
    }

    #[test]
    fn known_3x3_convolution() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng(2));
        conv.weight.value = Tensor::full(&[1, 1, 3, 3], 1.0);
        conv.bias.value = Tensor::zeros(&[1]);
        let x = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x, 0);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 45.0);
    }

    #[test]
    fn gradcheck_small_conv() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng(3));
        check_layer_gradients(&mut conv, &[2, 2, 4, 4], 17);
    }

    #[test]
    fn gradcheck_strided_conv() {
        let mut conv = Conv2d::new(1, 2, 2, 2, 0, &mut rng(4));
        check_layer_gradients(&mut conv, &[1, 1, 4, 4], 19);
    }

    #[test]
    fn gradcheck_nonsquare_input_with_stride_and_padding() {
        let mut conv = Conv2d::new(2, 2, 3, 2, 1, &mut rng(6));
        check_layer_gradients(&mut conv, &[2, 2, 5, 7], 23);
    }

    #[test]
    fn gradcheck_direct_path_matches_gemm_path() {
        // Same layer gradchecked under both backends.
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng(7));
        let prev = gemm::thread_backend();
        gemm::set_thread_backend(Backend::Naive);
        check_layer_gradients(&mut conv, &[2, 2, 4, 4], 29);
        gemm::set_thread_backend(Backend::Fast);
        check_layer_gradients(&mut conv, &[2, 2, 4, 4], 29);
        gemm::set_thread_backend(prev);
    }

    #[test]
    fn gemm_forward_matches_direct() {
        let mut conv = Conv2d::new(3, 4, 3, 2, 1, &mut rng(8));
        let x = init::normal(&[2, 3, 7, 6], 1.0, &mut rng(9));
        let fast = conv.forward_gemm(&x);
        let direct = conv2d_direct(
            &x,
            &conv.weight.value,
            &conv.bias.value,
            conv.stride,
            conv.padding,
        );
        assert_eq!(fast.shape(), direct.shape());
        for (a, b) in fast.data().iter().zip(direct.data().iter()) {
            assert!((a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0));
        }
        // And the Layer::forward dispatch agrees with the explicit call.
        assert_eq!(conv.forward(&x, 0).data(), fast.data());
    }

    #[test]
    fn flops_scale_with_output_area() {
        let conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng(5));
        let f1 = conv.flops_per_sample(&[3, 8, 8]);
        let f2 = conv.flops_per_sample(&[3, 16, 16]);
        assert!((f2 / f1 - 4.0).abs() < 1e-9);
    }
}
