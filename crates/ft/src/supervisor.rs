//! The recovery supervisor (paper §4).
//!
//! Runs pipeline training under a [`FaultPlan`]. If the injected fault
//! kills the run, every stage's channels disconnect and the runtime joins
//! all workers with typed errors — the supervisor then restarts training
//! from the last *complete* per-stage checkpoint using the runtime's
//! resume machinery, exactly as the paper prescribes ("restarting entails
//! starting from the last successfully created checkpoint for all
//! stages"). The final [`TrainReport`] carries a
//! [`RecoveryRecord`] quantifying the recovery: detection latency, the
//! epoch resumed from, how many epochs of work were redone (the paper's
//! bound: at most one, with per-epoch checkpoints), and end quality.

use crate::plan::{Fault, FaultPlan};
use pipedream_core::PipelineConfig;
use pipedream_runtime::checkpoint::{latest_complete_point, CheckpointPoint};
use pipedream_runtime::fault::FaultHook;
use pipedream_runtime::report::RecoveryRecord;
use pipedream_runtime::trainer::{try_train_pipeline, TrainOpts};
use pipedream_runtime::TrainReport;
use pipedream_tensor::data::Dataset;
use pipedream_tensor::Sequential;
use std::fmt;
use std::sync::Arc;

/// Why supervised training could not produce a recovered run.
#[derive(Debug)]
pub enum SupervisorError {
    /// The plan's fault needs checkpoints to recover from, but
    /// `TrainOpts::checkpoint_dir` is unset.
    MissingCheckpointDir,
    /// Training failed before the plan's fault fired — an organic bug,
    /// not the injected fault.
    UnexpectedFailure(String),
    /// The restarted (post-fault) run failed too.
    RestartFailed(String),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupervisorError::MissingCheckpointDir => write!(
                f,
                "fault plan requires a checkpoint_dir to recover from (set TrainOpts::checkpoint_dir)"
            ),
            SupervisorError::UnexpectedFailure(e) => {
                write!(f, "training failed before the fault fired: {e}")
            }
            SupervisorError::RestartFailed(e) => write!(f, "restarted run failed: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Resume pipeline training from the last complete per-stage checkpoint
/// in `opts.checkpoint_dir` (§4's restart). `opts.epochs` counts the
/// *total* logical epochs of the run; the helper sizes the remaining work
/// from the checkpoint point and lets the runtime's resume machinery do
/// the restore and dataloader seek. Returns the trained model, the
/// resumed run's report, and the point it resumed from (`None` when no
/// checkpoint existed and the run started from scratch).
///
/// This is the relaunch primitive shared by [`train_with_recovery`]'s
/// restart path and the autopilot's repartition / rollback path. `hook`
/// lets the caller keep a persistent fault (a [`crate::DelayStraggler`]
/// modelling a degraded host) installed across the relaunch — the
/// environment does not heal just because the pipeline restarted.
pub fn resume_training(
    model: &Sequential,
    config: &PipelineConfig,
    dataset: &Dataset,
    opts: &TrainOpts,
    hook: Option<Arc<dyn FaultHook>>,
) -> Result<(Sequential, TrainReport, Option<CheckpointPoint>), SupervisorError> {
    let dir = opts
        .checkpoint_dir
        .as_ref()
        .ok_or(SupervisorError::MissingCheckpointDir)?;
    let point = latest_complete_point(dir, config.stages().len());
    let resume_start = point.map_or(0, |p| p.resume_epoch());
    let mut resumed_opts = opts.clone();
    resumed_opts.resume = true;
    resumed_opts.epochs = opts.epochs.saturating_sub(resume_start);
    let (trained, report) = try_train_pipeline(model.clone(), config, dataset, &resumed_opts, hook)
        .map_err(|e| SupervisorError::RestartFailed(e.to_string()))?;
    Ok((trained, report, point))
}

/// Train under `plan`, recovering from the injected fault if it brings
/// the pipeline down.
///
/// Returns the trained model and a report whose
/// [`TrainReport::recovery`] records what happened. The report's
/// `per_epoch` covers the *whole* logical run: epochs completed (and
/// checkpointed) before the fault, then the epochs the restarted run
/// trained.
pub fn train_with_recovery(
    model: &Sequential,
    config: &PipelineConfig,
    dataset: &Dataset,
    opts: &TrainOpts,
    plan: Arc<FaultPlan>,
) -> Result<(Sequential, TrainReport), SupervisorError> {
    if opts.checkpoint_dir.is_none() && !matches!(plan.fault(), Fault::Delay { .. }) {
        return Err(SupervisorError::MissingCheckpointDir);
    }
    let hook: Arc<dyn FaultHook> = plan.clone();
    match try_train_pipeline(model.clone(), config, dataset, opts, Some(hook)) {
        Ok((trained, mut report)) => {
            // Non-fatal fault (a delay, a corrupted checkpoint the run
            // never needed): training completed in one attempt.
            report.recovery = Some(RecoveryRecord {
                fault: plan.spec().to_string(),
                detection_latency_s: 0.0,
                resumed_from_epoch: None,
                resumed_from_mb: None,
                epochs_redone: 0,
                minibatches_redone: 0,
                checkpoint_every: opts.checkpoint_every,
                final_loss: report.final_loss(),
                final_accuracy: report.final_accuracy(),
                baseline_loss: None,
                baseline_accuracy: None,
            });
            Ok((trained, report))
        }
        Err(e) => {
            if !plan.fired() {
                return Err(SupervisorError::UnexpectedFailure(e.to_string()));
            }
            // Detection and recovery land on a dedicated supervisor track,
            // so a traced fault-injected run shows the kill and the restart
            // alongside the worker rows.
            let supervisor = opts
                .obs
                .as_ref()
                .map(|s| s.recorder("supervisor"))
                .unwrap_or_default();
            supervisor.instant(pipedream_obs::SpanKind::Fault);
            if let Some(session) = &opts.obs {
                session.metrics().counter("faults_detected_total").inc();
            }
            let detection_latency_s = plan
                .injected_at()
                .map(|t0| e.detected_at.duration_since(t0).as_secs_f64())
                .unwrap_or(0.0);
            // §4: restart every stage from the last training point whose
            // *every* stage checkpoint is intact — an epoch boundary, or a
            // mid-epoch `(epoch, minibatch)` dump when the run used
            // `checkpoint_every`. The runtime's resume machinery does the
            // restore and the dataloader seek; we only size the remaining
            // work.
            let (trained, resumed_report, point) =
                resume_training(model, config, dataset, opts, None)?;
            let resume_start = point.map_or(0, |p| p.resume_epoch());
            supervisor.instant(pipedream_obs::SpanKind::Recovery);
            if let Some(session) = &opts.obs {
                session.metrics().counter("faults_recovered_total").inc();
            }

            // Work redone = training past the checkpoint that had already
            // been (at least partially) executed when the fault hit.
            let mbs_per_epoch = dataset.num_minibatches(opts.batch).max(1) as u64;
            let resumed_from_mb = point.map(|p| p.global_mb(mbs_per_epoch as usize));
            let g0 = resumed_from_mb.unwrap_or(0);
            // First global minibatch *not* reached when the fault fired.
            let fault_frontier = match *plan.fault() {
                Fault::Kill { mb, .. } | Fault::Delay { mb, .. } | Fault::Drop { mb, .. } => mb + 1,
                Fault::Corrupt { epoch, .. } => (epoch as u64 + 1) * mbs_per_epoch,
            };
            let fault_epoch = ((fault_frontier - 1) / mbs_per_epoch) as usize;
            let epochs_redone = (fault_epoch + 1).saturating_sub(resume_start);
            let minibatches_redone = fault_frontier.saturating_sub(g0);

            // Stitch the logical run back together: checkpointed epochs
            // from the faulted attempt, then everything the restart
            // trained.
            let mut per_epoch: Vec<_> = e
                .partial
                .per_epoch
                .iter()
                .filter(|s| s.epoch < resume_start)
                .copied()
                .collect();
            per_epoch.extend(resumed_report.per_epoch.iter().copied());
            let mut report = resumed_report.clone();
            report.per_epoch = per_epoch;
            report.wall_time_s += e.partial.wall_time_s;
            report.recovery = Some(RecoveryRecord {
                fault: plan.spec().to_string(),
                detection_latency_s,
                resumed_from_epoch: point.map(|p| p.epoch()),
                resumed_from_mb,
                epochs_redone,
                minibatches_redone,
                checkpoint_every: opts.checkpoint_every,
                final_loss: report.final_loss(),
                final_accuracy: report.final_accuracy(),
                baseline_loss: None,
                baseline_accuracy: None,
            });
            Ok((trained, report))
        }
    }
}
