//! §5.4 "Comparison to Inter-batch Parallelism": GPipe on GNMT-16 with 16
//! GPUs, same partitioning as PipeDream, at two pipeline depths:
//! `m = NOAM` and the largest depth that fits memory. Flushes cost GPipe
//! 35–71% of PipeDream's throughput in the paper.

use crate::util::format_table;
use pipedream_core::schedule::Schedule;
use pipedream_core::{PipelineConfig, Planner};
use pipedream_hw::{ClusterPreset, Precision};
use pipedream_model::zoo;
use pipedream_sim::{simulate_pipeline, simulate_pipeline_recompute};
use std::fmt;

/// One cluster's comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Cluster name.
    pub cluster: String,
    /// GPipe throughput slowdown vs PipeDream at `m = NOAM`.
    pub slowdown_at_noam: f64,
    /// Paper's slowdown at `m = NOAM`.
    pub paper_at_noam: f64,
    /// Slowdown at the largest memory-feasible depth (we use 2 × NOAM).
    pub slowdown_at_max: f64,
    /// Paper's slowdown at max depth.
    pub paper_at_max: f64,
}

/// The comparison table.
#[derive(Debug, Clone)]
pub struct GpipeComparison {
    /// One row per cluster.
    pub rows: Vec<Row>,
}

/// Run the comparison.
pub fn run() -> GpipeComparison {
    let model = zoo::gnmt16();
    let cases = [
        (ClusterPreset::A, 4usize, 0.55, 0.35),
        (ClusterPreset::B, 2usize, 0.71, 0.42),
    ];
    let rows = cases
        .into_iter()
        .map(|(cluster, servers, paper_noam, paper_max)| {
            let topo = cluster.with_servers(servers);
            let costs = model.costs(&topo.device, model.default_batch, Precision::Fp32);
            // GPipe "does not provide an algorithm for partitioning work
            // across stages, so we use the same partitions as PipeDream":
            // the balanced straight pipeline over all 16 workers (GNMT-16
            // has 19 layers, so a 16-deep straight pipeline exists).
            let planner = Planner::new(&model, &topo);
            let workers = topo.total_workers();
            let boundaries = planner
                .balanced_boundaries(workers)
                .expect("GNMT-16 splits 16 ways");
            let config = PipelineConfig::straight(model.num_layers(), &boundaries);
            let noam = config.noam() as u64;
            let n_mbs = 192u64;
            // Compare whole-run throughput (makespan-based): GPipe's cost
            // is its recurring flush bubbles, which per-minibatch sampling
            // between flushes would miss.
            // GPipe trades compute for memory: it discards activation
            // stashes and recomputes them in the backward pass (§2.2), so
            // its rows pay the recompute penalty.
            let pd = simulate_pipeline(&costs, &topo, &Schedule::one_f_one_b(&config, n_mbs));
            let gp_noam =
                simulate_pipeline_recompute(&costs, &topo, &Schedule::gpipe(&config, n_mbs, noam));
            let gp_max = simulate_pipeline_recompute(
                &costs,
                &topo,
                &Schedule::gpipe(&config, n_mbs, 2 * noam),
            );
            Row {
                cluster: cluster.name().to_string(),
                slowdown_at_noam: 1.0 - pd.makespan / gp_noam.makespan,
                paper_at_noam: paper_noam,
                slowdown_at_max: 1.0 - pd.makespan / gp_max.makespan,
                paper_at_max: paper_max,
            }
        })
        .collect();
    GpipeComparison { rows }
}

impl fmt::Display for GpipeComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§5.4 GPipe comparison (GNMT-16, 16 GPUs, same partitioning)\n"
        )?;
        let header = [
            "cluster",
            "slowdown @ m=NOAM",
            "(paper)",
            "slowdown @ max depth",
            "(paper)",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.cluster.clone(),
                    format!("{:.0}%", r.slowdown_at_noam * 100.0),
                    format!("{:.0}%", r.paper_at_noam * 100.0),
                    format!("{:.0}%", r.slowdown_at_max * 100.0),
                    format!("{:.0}%", r.paper_at_max * 100.0),
                ]
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn gpipe_loses_throughput_to_flushes() {
        let c = super::run();
        for r in &c.rows {
            assert!(
                r.slowdown_at_noam > 0.2,
                "{}: slowdown {:.2}",
                r.cluster,
                r.slowdown_at_noam
            );
            // Deeper pipelines amortise flushes: max-depth slowdown is
            // smaller than NOAM-depth slowdown.
            assert!(
                r.slowdown_at_max < r.slowdown_at_noam,
                "{}: {:.2} vs {:.2}",
                r.cluster,
                r.slowdown_at_max,
                r.slowdown_at_noam
            );
        }
    }
}
