//! Figure 9: weight stashing as minibatch 5 flows across stages.
//!
//! Reproduced *for real*: a 3-stage pipeline trains an actual model in the
//! runtime; the version trace shows which weight version each stage's
//! forward pass of minibatch 5 used — stage 0 has seen only minibatch 1's
//! update, later stages have seen more (exactly the paper's picture).

use crate::util::format_table;
use pipedream_core::PipelineConfig;
use pipedream_runtime::{train_pipeline, LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Relu};
use pipedream_tensor::Sequential;
use std::fmt;

/// Version trace for a few minibatches.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// `(minibatch, stage, version-used-for-forward)` records.
    pub records: Vec<(u64, usize, u64)>,
    /// Number of stages.
    pub stages: usize,
}

/// Run the experiment: 3-stage straight pipeline, weight stashing.
pub fn run() -> Fig9 {
    let mut r = rng(99);
    let model = Sequential::new("fig9")
        .push(Linear::new(8, 16, &mut r))
        .push(Relu::new())
        .push(Linear::new(16, 16, &mut r))
        .push(Relu::new())
        .push(Linear::new(16, 16, &mut r))
        .push(Linear::new(16, 3, &mut r));
    let config = PipelineConfig::straight(6, &[1, 3]);
    let data = blobs(96, 8, 3, 0.5, 42);
    let opts = TrainOpts {
        epochs: 2,
        batch: 8,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs: None,
        ..TrainOpts::default()
    };
    let (_, report) = train_pipeline(model, &config, &data, &opts);
    let records = report
        .version_trace
        .iter()
        .filter(|r| r.mb <= 8)
        .map(|r| (r.mb, r.stage, r.version))
        .collect();
    Fig9 { records, stages: 3 }
}

impl Fig9 {
    /// Version used at `stage` for minibatch `mb`.
    pub fn version(&self, mb: u64, stage: usize) -> Option<u64> {
        self.records
            .iter()
            .find(|&&(m, s, _)| m == mb && s == stage)
            .map(|&(_, _, v)| v)
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: weight versions used for each minibatch's forward pass\n\
             (version v = weights after v updates; stage s of n lags n-1-s behind)\n"
        )?;
        let header = ["minibatch", "stage 0", "stage 1", "stage 2"];
        let mbs: Vec<u64> = {
            let mut v: Vec<u64> = self.records.iter().map(|r| r.0).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let rows: Vec<Vec<String>> = mbs
            .iter()
            .map(|&mb| {
                let mut row = vec![mb.to_string()];
                for s in 0..self.stages {
                    row.push(
                        self.version(mb, s)
                            .map(|v| format!("w({v})"))
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                row
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn minibatch5_versions_increase_along_stages() {
        let f = super::run();
        // Steady state: stage s uses version mb − (n−1−s); for mb 5 of a
        // 3-stage pipeline that is w(3), w(4), w(5).
        assert_eq!(f.version(5, 0), Some(3));
        assert_eq!(f.version(5, 1), Some(4));
        assert_eq!(f.version(5, 2), Some(5));
    }
}
