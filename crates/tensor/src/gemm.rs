//! Register-blocked, tiled single-precision GEMM.
//!
//! The seed implementation of `Tensor::matmul` was a scalar `ikj` loop
//! with a branchy zero-skip — fine for toy shapes, but PipeDream's whole
//! premise (§3.1) is that per-layer *compute* dominates, so the compute
//! kernel is the lever that makes every pipeline measurement meaningful.
//! This module is the classic three-level blocking scheme (Goto-style,
//! the structure BLIS and OpenBLAS use):
//!
//! * the innermost **micro-kernel** computes an `MR × NR` tile of `C`
//!   with the whole accumulator held in registers — the `k` loop streams
//!   packed operand panels with no bounds checks or branches, so LLVM
//!   autovectorizes it (no `unsafe`, no intrinsics, per this crate's
//!   charter);
//! * operands are **packed** into contiguous panels (`A` in `MR`-row
//!   panels, `B` in `NR`-column panels) so the micro-kernel's loads are
//!   unit-stride regardless of the caller's layout — which also makes
//!   transposed operands free (`trans_a`/`trans_b` only change packing
//!   indices), eliminating the materialized `transpose()` calls the
//!   layer backward passes used to do;
//! * outer loops block over `KC`/`MC`/`NC` so panels stay cache-resident.
//!
//! **Summation-order guarantee:** each `C[i][j]` accumulates its `k`
//! products in strictly ascending `k` order, exactly like the naive
//! kernel, as long as `k ≤ KC` (a single `k`-block). Two effects can
//! still perturb the low bits relative to [`gemm_reference`]:
//!
//! * on targets with FMA (any `target-cpu=native` build on modern x86 —
//!   see `.cargo/config.toml`), the micro-kernel uses `f32::mul_add`, so
//!   each product+add rounds **once** where the scalar reference rounds
//!   twice — a ≤ 1-ulp difference per accumulation step. Without the
//!   `fma` target feature the kernels are bit-identical in this regime
//!   (the differential suite asserts exact equality there);
//! * for `k > KC` the per-block partial sums are combined
//!   block-at-a-time, which genuinely reorders the reduction.
//!
//! Both effects are bounded by the differential suite's 1e-5 relative
//! tolerance (`crates/tensor/tests/kernel_equiv.rs`), and the runtime's
//! kernel-swap loss guard pins the end-to-end consequence: per-epoch
//! training losses across a backend swap agree to 1e-5 relative (and
//! exactly, without FMA).
//!
//! The scalar kernel is kept as [`gemm_reference`] and selectable at
//! runtime via [`set_thread_backend`] so tests and benches can run both
//! sides by side.

use crate::pool;
use std::cell::Cell;

/// Micro-kernel tile rows (accumulator height).
pub const MR: usize = 6;
/// Micro-kernel tile columns (accumulator width). Sized so the
/// `MR × NR` accumulator fills the architectural vector file without
/// spilling: 12 zmm registers on AVX-512 targets, 12 ymm otherwise.
pub const NR: usize = if cfg!(target_feature = "avx512f") {
    32
} else {
    16
};
/// `k`-dimension block: one packed `A` panel column-depth. Also the
/// bit-identical-summation envelope (see module docs).
pub const KC: usize = 256;
/// `m`-dimension block: rows of `A` packed at once (`MC·KC` floats ≈
/// 64 KiB, L2-resident).
pub const MC: usize = 60;
/// `n`-dimension block: columns of `B` packed at once.
pub const NC: usize = 512;

/// Which matmul kernel [`gemm`] dispatches to on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The tiled, register-blocked kernel (default).
    #[default]
    Fast,
    /// The seed scalar `ikj` kernel — kept for differential tests,
    /// benches, and the kernel-swap loss guard.
    Naive,
}

thread_local! {
    static BACKEND: Cell<Backend> = const { Cell::new(Backend::Fast) };
}

/// Select the kernel used by [`gemm`] (and therefore every
/// `Tensor`/layer matmul) on the *current thread*. Thread-local so a
/// test or a pipeline worker can pin a backend without racing other
/// threads.
pub fn set_thread_backend(b: Backend) {
    BACKEND.with(|c| c.set(b));
}

/// The current thread's kernel selection.
pub fn thread_backend() -> Backend {
    BACKEND.with(|c| c.get())
}

/// `C (+)= op(A)·op(B)` on row-major storage, dispatching on the
/// thread's [`Backend`].
///
/// * `m, k, n`: dimensions of the *operation* — `op(A)` is `[m, k]`,
///   `op(B)` is `[k, n]`, `C` is `[m, n]`.
/// * `trans_a`: when set, `A` is stored `[k, m]` and used transposed
///   (likewise `trans_b` / `[n, k]`). Transposition happens during
///   packing; nothing is materialized.
/// * `accumulate`: when set, adds into the existing contents of `C`
///   (`C += …`); otherwise `C` is overwritten.
// The nine parameters are the standard BLAS sgemm surface; bundling them
// into a struct would only rename the problem at every call site.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
    accumulate: bool,
) {
    match thread_backend() {
        Backend::Fast => gemm_fast(c, a, b, m, k, n, trans_a, trans_b, accumulate),
        Backend::Naive => gemm_reference(c, a, b, m, k, n, trans_a, trans_b, accumulate),
    }
}

fn check_dims(c: &[f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    assert!(a.len() >= m * k, "gemm: A has {} < {}·{}", a.len(), m, k);
    assert!(b.len() >= k * n, "gemm: B has {} < {}·{}", b.len(), k, n);
    assert!(c.len() >= m * n, "gemm: C has {} < {}·{}", c.len(), m, n);
}

/// The tiled kernel (see module docs). Prefer [`gemm`], which respects
/// the thread backend; this entry point exists for differential tests
/// and benches that need the fast path explicitly.
#[allow(clippy::too_many_arguments)]
pub fn gemm_fast(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
    accumulate: bool,
) {
    check_dims(c, a, b, m, k, n);
    if m == 0 || n == 0 || k == 0 {
        if !accumulate {
            c[..m * n].fill(0.0);
        }
        return;
    }
    let mut a_pack = pool::take_zeroed(MC.min(m).next_multiple_of(MR) * KC.min(k));
    let mut b_pack = pool::take_zeroed(KC.min(k) * NC.min(n).next_multiple_of(NR));
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // The first k-block *writes* C (β = 0) unless the caller asked
            // to accumulate — no pre-zeroing pass, no C read stream.
            let overwrite = !accumulate && pc == 0;
            pack_b(&mut b_pack, b, pc, jc, kc, nc, trans_b, k, n);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(&mut a_pack, a, ic, pc, mc, kc, trans_a, m, k);
                for jr in (0..nc).step_by(NR) {
                    let bp = &b_pack[(jr / NR) * kc * NR..][..kc * NR];
                    for ir in (0..mc).step_by(MR) {
                        let ap = &a_pack[(ir / MR) * kc * MR..][..kc * MR];
                        micro_kernel(
                            &mut c[(ic + ir) * n + jc + jr..],
                            n,
                            ap,
                            bp,
                            MR.min(mc - ir),
                            NR.min(nc - jr),
                            overwrite,
                        );
                    }
                }
            }
        }
    }
    pool::give(a_pack);
    pool::give(b_pack);
}

/// Pack `A[ic.., pc..]` (`mc × kc` of the op view) into `MR`-row panels:
/// panel `ip` holds rows `ic+ip·MR ..`, laid out `k`-major so the
/// micro-kernel reads `MR` consecutive floats per `k` step. Short edge
/// panels are zero-padded (0·x contributes exactly 0).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a_pack: &mut [f32],
    a: &[f32],
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    trans_a: bool,
    m: usize,
    k: usize,
) {
    let mut idx = 0;
    for ip in (0..mc).step_by(MR) {
        let rows = MR.min(mc - ip);
        if rows == MR && trans_a {
            // Aᵀ is stored [k, m]: the MR rows of a panel are contiguous
            // per k step, so a full panel is straight memcpy rows.
            for p in 0..kc {
                let src = &a[(pc + p) * m + ic + ip..][..MR];
                a_pack[idx..idx + MR].copy_from_slice(src);
                idx += MR;
            }
        } else if rows == MR {
            // Row-major A: each source row is contiguous; write it down
            // the panel at stride MR. Branch-free so the copy pipelines.
            for (r, panel_row) in a.chunks_exact(k).skip(ic + ip).take(MR).enumerate() {
                let seg = &panel_row[pc..pc + kc];
                for (p, &v) in seg.iter().enumerate() {
                    a_pack[idx + p * MR + r] = v;
                }
            }
            idx += kc * MR;
        } else {
            for p in 0..kc {
                for r in 0..MR {
                    a_pack[idx] = if r < rows {
                        let (row, col) = (ic + ip + r, pc + p);
                        if trans_a {
                            a[col * m + row]
                        } else {
                            a[row * k + col]
                        }
                    } else {
                        0.0
                    };
                    idx += 1;
                }
            }
        }
    }
}

/// Pack `B[pc.., jc..]` (`kc × nc` of the op view) into `NR`-column
/// panels, `k`-major, zero-padded at the right edge.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    b_pack: &mut [f32],
    b: &[f32],
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    trans_b: bool,
    k: usize,
    n: usize,
) {
    let mut idx = 0;
    for jp in (0..nc).step_by(NR) {
        let cols = NR.min(nc - jp);
        if cols == NR && !trans_b {
            // Row-major B: the NR panel columns are contiguous per k
            // step, so a full panel is straight memcpy rows.
            for p in 0..kc {
                let src = &b[(pc + p) * n + jc + jp..][..NR];
                b_pack[idx..idx + NR].copy_from_slice(src);
                idx += NR;
            }
        } else if cols == NR {
            // Bᵀ is stored [n, k]: each panel column is a contiguous k
            // run; write it across the panel at stride NR.
            for (cix, col_run) in b.chunks_exact(k).skip(jc + jp).take(NR).enumerate() {
                let seg = &col_run[pc..pc + kc];
                for (p, &v) in seg.iter().enumerate() {
                    b_pack[idx + p * NR + cix] = v;
                }
            }
            idx += kc * NR;
        } else {
            for p in 0..kc {
                for cix in 0..NR {
                    b_pack[idx] = if cix < cols {
                        let (row, col) = (pc + p, jc + jp + cix);
                        if trans_b {
                            b[col * k + row]
                        } else {
                            b[row * n + col]
                        }
                    } else {
                        0.0
                    };
                    idx += 1;
                }
            }
        }
    }
}

/// `MR × NR` register tile: `C[..mr_eff, ..nr_eff] (+)= Aᵖ·Bᵖ` over one
/// packed `k` panel. The accumulator array never leaves registers; the
/// `k` loop is branch-free over `chunks_exact`, which is what lets LLVM
/// keep it vectorized (out-of-line on purpose — inlining it into the
/// blocking loops defeats the loop vectorizer and degrades the FMAs to
/// scalars). With `overwrite` the tile is stored with β = 0 semantics:
/// no read of the destination, no prior zero-fill needed.
#[inline(never)]
fn micro_kernel(
    c: &mut [f32],
    ldc: usize,
    ap: &[f32],
    bp: &[f32],
    mr_eff: usize,
    nr_eff: usize,
    overwrite: bool,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = av[r];
            let row = &mut acc[r];
            if cfg!(target_feature = "fma") {
                for j in 0..NR {
                    row[j] = ar.mul_add(bv[j], row[j]);
                }
            } else {
                for j in 0..NR {
                    row[j] += ar * bv[j];
                }
            }
        }
    }
    if mr_eff == MR && nr_eff == NR {
        for (r, accr) in acc.iter().enumerate() {
            let crow = &mut c[r * ldc..r * ldc + NR];
            if overwrite {
                crow.copy_from_slice(accr);
            } else {
                for j in 0..NR {
                    crow[j] += accr[j];
                }
            }
        }
    } else {
        for r in 0..mr_eff {
            let crow = &mut c[r * ldc..r * ldc + nr_eff];
            for (dst, &src) in crow.iter_mut().zip(acc[r].iter()) {
                if overwrite {
                    *dst = src;
                } else {
                    *dst += src;
                }
            }
        }
    }
}

/// The seed scalar kernel: `ikj` loops with the original zero-skip
/// branch, extended with `trans`/`accumulate` handling so every call
/// site can swap backends. This is the differential-testing reference.
#[allow(clippy::too_many_arguments)]
pub fn gemm_reference(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    trans_a: bool,
    trans_b: bool,
    accumulate: bool,
) {
    check_dims(c, a, b, m, k, n);
    if !accumulate {
        c[..m * n].fill(0.0);
    }
    if !trans_a && !trans_b {
        // Fast-ish slice form, byte-for-byte the seed `Tensor::matmul`.
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut c[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += av * bv;
                }
            }
        }
    } else {
        for i in 0..m {
            for p in 0..k {
                let av = if trans_a { a[p * m + i] } else { a[i * k + p] };
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let bv = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    c[i * n + j] += av * bv;
                }
            }
        }
    }
}

/// Cache-blocked out-of-place transpose: `dst[j][i] = src[i][j]` for an
/// `m × n` source. 32×32 tiles keep both the read and write streams
/// within a few cache lines.
pub fn transpose_into(dst: &mut [f32], src: &[f32], m: usize, n: usize) {
    assert!(src.len() >= m * n && dst.len() >= m * n);
    const TB: usize = 32;
    for ib in (0..m).step_by(TB) {
        let imax = (ib + TB).min(m);
        for jb in (0..n).step_by(TB) {
            let jmax = (jb + TB).min(n);
            for i in ib..imax {
                for j in jb..jmax {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{normal, rng};

    fn run_both(
        m: usize,
        k: usize,
        n: usize,
        trans_a: bool,
        trans_b: bool,
        accumulate: bool,
    ) -> (Vec<f32>, Vec<f32>) {
        let a = normal(&[m * k], 1.0, &mut rng(m as u64 * 31 + k as u64));
        let b = normal(&[k * n], 1.0, &mut rng(n as u64 * 17 + k as u64 + 1));
        let seed_c = normal(&[m * n], 1.0, &mut rng(99));
        let mut c1 = seed_c.data().to_vec();
        let mut c2 = seed_c.data().to_vec();
        gemm_fast(
            &mut c1,
            a.data(),
            b.data(),
            m,
            k,
            n,
            trans_a,
            trans_b,
            accumulate,
        );
        gemm_reference(
            &mut c2,
            a.data(),
            b.data(),
            m,
            k,
            n,
            trans_a,
            trans_b,
            accumulate,
        );
        (c1, c2)
    }

    fn assert_close(c1: &[f32], c2: &[f32]) {
        for (x, y) in c1.iter().zip(c2.iter()) {
            let denom = 1.0f32.max(x.abs()).max(y.abs());
            assert!((x - y).abs() / denom < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn known_2x3_by_3x2() {
        let a = [1., 2., 3., 4., 5., 6.];
        let b = [7., 8., 9., 10., 11., 12.];
        let mut c = [0.0; 4];
        gemm_fast(&mut c, &a, &b, 2, 3, 2, false, false, false);
        assert_eq!(c, [58., 64., 139., 154.]);
    }

    #[test]
    fn matches_reference_across_edge_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (MR, KC, NR),
            (MR + 1, 3, NR + 1),
            (MC + 5, KC + 7, NC / 8 + 3),
            (3, 70, 130),
        ] {
            let (c1, c2) = run_both(m, k, n, false, false, false);
            assert_close(&c1, &c2);
        }
    }

    #[test]
    fn summation_order_is_preserved_when_k_fits_one_block() {
        // The kernel-swap loss guard rests on this: a single k-block
        // preserves the naive kernel's summation order. Without FMA that
        // means bit-identical results; with FMA each step rounds once
        // instead of twice, so the drift is at most ~1 ulp per step.
        for &(m, k, n) in &[(5, 17, 9), (32, KC, 32), (MR, 1, NR)] {
            let (c1, c2) = run_both(m, k, n, false, false, false);
            if cfg!(target_feature = "fma") {
                for (x, y) in c1.iter().zip(c2.iter()) {
                    let denom = 1.0f32.max(x.abs()).max(y.abs());
                    assert!(
                        (x - y).abs() / denom < 1e-5,
                        "({m},{k},{n}): {x} vs {y} beyond FMA rounding"
                    );
                }
            } else {
                assert_eq!(c1, c2, "({m},{k},{n}) must be bit-identical");
            }
        }
    }

    #[test]
    fn transposed_operands_match_reference() {
        for &(ta, tb) in &[(true, false), (false, true), (true, true)] {
            let (c1, c2) = run_both(13, 29, 11, ta, tb, false);
            assert_close(&c1, &c2);
        }
    }

    #[test]
    fn accumulate_adds_into_existing_c() {
        let (c1, c2) = run_both(9, 21, 14, false, false, true);
        assert_close(&c1, &c2);
        // And really did accumulate: a zero product leaves C untouched.
        let mut c = vec![3.0; 4];
        gemm_fast(&mut c, &[0.0; 2], &[0.0; 2], 2, 1, 2, false, false, true);
        assert_eq!(c, vec![3.0; 4]);
    }

    #[test]
    fn k_beyond_one_block_stays_within_tolerance() {
        let (c1, c2) = run_both(4, 2 * KC + 13, 6, false, false, false);
        assert_close(&c1, &c2);
    }

    #[test]
    fn transpose_into_round_trip() {
        let src = normal(&[7 * 45], 1.0, &mut rng(5));
        let mut t = vec![0.0; 7 * 45];
        let mut back = vec![0.0; 7 * 45];
        transpose_into(&mut t, src.data(), 7, 45);
        transpose_into(&mut back, &t, 45, 7);
        assert_eq!(back, src.data());
        assert_eq!(t[3 * 7 + 2], src.data()[2 * 45 + 3]);
    }

    #[test]
    fn thread_backend_dispatch() {
        assert_eq!(thread_backend(), Backend::Fast);
        set_thread_backend(Backend::Naive);
        assert_eq!(thread_backend(), Backend::Naive);
        set_thread_backend(Backend::Fast);
    }
}
