//! The daemon: acceptor + fixed worker pool over a bounded queue.
//!
//! Connection-level scheduling: the acceptor pushes accepted sockets
//! onto a bounded queue and a fixed pool of workers pops them, each
//! serving its connection's keep-alive request stream to completion.
//! Backpressure is explicit — when the queue is full the acceptor
//! answers `503` immediately instead of letting connections pile up
//! invisibly in the kernel backlog. Per-request deadlines
//! (`x-deadline-ms`, or the configured default) are admission control:
//! a request whose deadline passed while its connection sat in the queue
//! is answered `408` without running the DP, so a backlogged daemon
//! sheds stale work first. A panicking handler is caught per-request and
//! mapped to `500` — the daemon itself never dies on a request.
//!
//! Shutdown is graceful: the acceptor stops accepting, workers finish
//! the request in flight (they poll the shutdown flag on a short socket
//! read timeout), and `join` collects every thread.

use crate::cache::{CacheStats, ShardedLruCache};
use crate::http::{self, ReadError, Request};
use crate::protocol::{self, ApiError, PlanCache};
use pipedream_obs::MetricsRegistry;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7100` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads serving connections.
    pub threads: usize,
    /// Bounded connection-queue depth; beyond it the acceptor sheds 503s.
    pub queue: usize,
    /// Plan-cache entry bound across all shards.
    pub cache_capacity: usize,
    /// Plan-cache shard count.
    pub cache_shards: usize,
    /// Default per-request deadline in ms when the client sends no
    /// `x-deadline-ms` header; 0 disables.
    pub default_deadline_ms: u64,
    /// Close keep-alive connections idle this long, freeing the worker
    /// for queued connections; 0 uses the 10 s default.
    pub idle_timeout_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7100".into(),
            threads: 2,
            queue: 64,
            cache_capacity: 256,
            cache_shards: 8,
            default_deadline_ms: 0,
            idle_timeout_ms: 0,
        }
    }
}

/// A connection waiting for a worker, stamped with its arrival time so
/// first-request deadlines cover queue wait.
struct QueuedConn {
    stream: TcpStream,
    accepted_at: Instant,
}

/// Hand-rolled bounded MPMC queue (the vendored crossbeam stand-in only
/// has unbounded channels, and backpressure is the point here).
struct BoundedQueue {
    inner: Mutex<VecDeque<QueuedConn>>,
    not_empty: Condvar,
    capacity: usize,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Non-blocking push; returns the connection back on overflow.
    fn try_push(&self, conn: QueuedConn) -> Result<usize, QueuedConn> {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.capacity {
            return Err(conn);
        }
        q.push_back(conn);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking pop with a timeout (workers use the timeout to poll the
    /// shutdown flag).
    fn pop_timeout(&self, timeout: Duration) -> Option<QueuedConn> {
        let mut q = self.inner.lock().unwrap();
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = self.not_empty.wait_timeout(q, deadline - now).unwrap();
            q = guard;
            if res.timed_out() && q.is_empty() {
                return None;
            }
        }
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

/// Shared server state: the plan cache and the metrics registry.
pub struct ServiceState {
    /// The sharded plan cache.
    pub cache: PlanCache,
    /// Prometheus registry backing `/metrics`.
    pub metrics: Arc<MetricsRegistry>,
    /// Cache counters already published to `metrics` (delta tracking —
    /// registry counters are monotonic adds, cache stats are absolutes).
    published: Mutex<CacheStats>,
}

impl ServiceState {
    fn new(opts: &ServeOptions, metrics: Arc<MetricsRegistry>) -> Self {
        ServiceState {
            cache: ShardedLruCache::new(opts.cache_capacity, opts.cache_shards),
            metrics,
            published: Mutex::new(CacheStats::default()),
        }
    }

    /// Fold the cache's absolute counters into the registry as deltas.
    pub fn publish_cache_metrics(&self) {
        let now = self.cache.stats();
        let mut last = self.published.lock().unwrap();
        self.metrics
            .counter("serve_cache_hits_total")
            .add(now.hits - last.hits);
        self.metrics
            .counter("serve_cache_misses_total")
            .add(now.misses - last.misses);
        self.metrics
            .counter("serve_cache_evictions_total")
            .add(now.evictions - last.evictions);
        self.metrics
            .counter("serve_cache_coalesced_total")
            .add(now.coalesced - last.coalesced);
        self.metrics
            .gauge("serve_cache_entries")
            .set(self.cache.len() as f64);
        *last = now;
    }
}

/// A running daemon; dropping it without [`Server::shutdown`] aborts the
/// threads with the process.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    state: Arc<ServiceState>,
}

impl Server {
    /// Bind, spawn the acceptor + worker pool, and return immediately.
    pub fn start(opts: ServeOptions, metrics: Arc<MetricsRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let state = Arc::new(ServiceState::new(&opts, metrics));
        let queue = Arc::new(BoundedQueue::new(opts.queue));
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            threads.push(
                thread::Builder::new()
                    .name("serve-acceptor".into())
                    .spawn(move || accept_loop(listener, &queue, &shutdown, &state))?,
            );
        }
        let worker_opts = WorkerOptions {
            default_deadline_ms: opts.default_deadline_ms,
            idle_limit: Duration::from_millis(if opts.idle_timeout_ms == 0 {
                10_000
            } else {
                opts.idle_timeout_ms
            }),
        };
        for i in 0..opts.threads.max(1) {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let state = Arc::clone(&state);
            let worker_opts = worker_opts.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &shutdown, &state, &worker_opts))?,
            );
        }

        Ok(Server {
            addr,
            shutdown,
            threads,
            state,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (cache + metrics) — used by in-process benches
    /// and tests to inspect cache stats without a scrape.
    pub fn state(&self) -> &Arc<ServiceState> {
        &self.state
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    queue: &BoundedQueue,
    shutdown: &AtomicBool,
    state: &ServiceState,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                state.metrics.counter("serve_connections_total").add(1);
                let conn = QueuedConn {
                    stream,
                    accepted_at: Instant::now(),
                };
                match queue.try_push(conn) {
                    Ok(depth) => state.metrics.gauge("serve_queue_depth").set(depth as f64),
                    Err(mut rejected) => {
                        // Shed load visibly: canned 503, close.
                        state.metrics.counter("serve_rejected_total").add(1);
                        let body = protocol::error_body(&ApiError {
                            status: 503,
                            message: "connection queue full".into(),
                        });
                        http::write_response(
                            &mut rejected.stream,
                            503,
                            "application/json",
                            body.as_bytes(),
                            false,
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// How long a worker waits on a silent keep-alive connection before
/// re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Per-worker settings threaded through from [`ServeOptions`].
#[derive(Clone)]
struct WorkerOptions {
    default_deadline_ms: u64,
    /// Close keep-alive connections idle this long, so a silent client
    /// cannot pin a worker forever.
    idle_limit: Duration,
}

fn worker_loop(
    queue: &BoundedQueue,
    shutdown: &AtomicBool,
    state: &ServiceState,
    opts: &WorkerOptions,
) {
    loop {
        match queue.pop_timeout(READ_POLL) {
            Some(conn) => {
                state
                    .metrics
                    .gauge("serve_queue_depth")
                    .set(queue.depth() as f64);
                serve_connection(conn, state, shutdown, opts);
            }
            None => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn serve_connection(
    conn: QueuedConn,
    state: &ServiceState,
    shutdown: &AtomicBool,
    opts: &WorkerOptions,
) {
    let QueuedConn {
        stream,
        accepted_at,
    } = conn;
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    // The first request's deadline clock starts at accept time, so time
    // spent in the bounded queue counts against it (admission control).
    // Later requests on the connection were never queued; their clock
    // starts when they are read, so client think-time never counts.
    let mut first_request = true;
    let mut idle_since = Instant::now();
    loop {
        match http::read_request(&mut reader) {
            Ok(req) => {
                let started = Instant::now();
                let request_epoch = if first_request { accepted_at } else { started };
                first_request = false;
                let (status, body, keep_alive) =
                    dispatch(&req, state, request_epoch, opts.default_deadline_ms);
                let endpoint = endpoint_label(&req.path);
                state
                    .metrics
                    .counter_labeled(
                        "serve_requests_total",
                        &[("endpoint", endpoint), ("status", status_class(status))],
                    )
                    .add(1);
                state
                    .metrics
                    .histogram_labeled("serve_request_seconds", &[("endpoint", endpoint)])
                    .observe_secs(started.elapsed().as_secs_f64());
                let keep_alive = keep_alive && !req.wants_close();
                if !http::write_response(
                    &mut write_half,
                    status,
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                ) || !keep_alive
                {
                    return;
                }
                idle_since = Instant::now();
            }
            Err(ReadError::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) || idle_since.elapsed() > opts.idle_limit {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) => {
                let body = protocol::error_body(&ApiError::bad_request(msg));
                http::write_response(
                    &mut write_half,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(ReadError::TooLarge) => {
                let body = protocol::error_body(&ApiError {
                    status: 413,
                    message: format!("body exceeds {} bytes", http::MAX_BODY_BYTES),
                });
                http::write_response(
                    &mut write_half,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}

fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/plan" => "plan",
        "/simulate" => "simulate",
        "/validate" => "validate",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        _ => "other",
    }
}

fn status_class(status: u16) -> &'static str {
    match status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        408 => "408",
        413 => "413",
        500 => "500",
        503 => "503",
        _ => "other",
    }
}

/// Route one request; returns `(status, body, keep_alive)`.
fn dispatch(
    req: &Request,
    state: &ServiceState,
    request_epoch: Instant,
    default_deadline_ms: u64,
) -> (u16, String, bool) {
    // Admission control: a request whose deadline expired (counting queue
    // wait for a connection's first request) is shed before any work.
    let deadline_ms = req
        .header("x-deadline-ms")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(default_deadline_ms);
    if deadline_ms > 0 && request_epoch.elapsed() > Duration::from_millis(deadline_ms) {
        let err = ApiError {
            status: 408,
            message: format!(
                "deadline of {deadline_ms} ms expired after {} ms in queue",
                request_epoch.elapsed().as_millis()
            ),
        };
        return (408, protocol::error_body(&err), true);
    }

    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| route(req, state)));
    match result {
        Ok(Ok(body)) => (200, body, true),
        Ok(Err(err)) => (err.status, protocol::error_body(&err), true),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("handler panicked");
            state.metrics.counter("serve_panics_total").add(1);
            let err = ApiError {
                status: 500,
                message: format!("internal error: {msg}"),
            };
            // Close after a panic: handler state for this connection is
            // suspect, and a fresh connection is cheap.
            (500, protocol::error_body(&err), false)
        }
    }
}

fn route(req: &Request, state: &ServiceState) -> Result<String, ApiError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Ok("{\"status\":\"ok\"}".into()),
        ("GET", "/metrics") => {
            state.publish_cache_metrics();
            Ok(state.metrics.render_prometheus())
        }
        ("POST", "/plan") => {
            let (v, _computed) = protocol::handle_plan(&state.cache, &req.body)?;
            serde_json::to_string(&v).map_err(|e| ApiError {
                status: 500,
                message: e.to_string(),
            })
        }
        ("POST", "/simulate") => {
            let v = protocol::handle_simulate(&state.cache, &req.body)?;
            serde_json::to_string(&v).map_err(|e| ApiError {
                status: 500,
                message: e.to_string(),
            })
        }
        ("POST", "/validate") => {
            let v = protocol::handle_validate(&req.body)?;
            serde_json::to_string(&v).map_err(|e| ApiError {
                status: 500,
                message: e.to_string(),
            })
        }
        ("GET", "/plan" | "/simulate" | "/validate") => Err(ApiError {
            status: 405,
            message: "use POST with a JSON body".into(),
        }),
        ("POST", "/healthz" | "/metrics") => Err(ApiError {
            status: 405,
            message: "use GET".into(),
        }),
        _ => Err(ApiError {
            status: 404,
            message: format!(
                "no route {} {} (endpoints: POST /plan, POST /simulate, POST /validate, \
                 GET /metrics, GET /healthz)",
                req.method, req.path
            ),
        }),
    }
}
