//! §5.2 "Comparison to Asynchronous Parallelism": ASP removes all
//! synchronization stalls but pays so much statistical efficiency that it
//! takes ~7.4× longer than PipeDream to reach even 48% accuracy on VGG-16
//! (4 Cluster-B servers), and never reaches the 68% target.

use crate::util::best_plan;
use pipedream_convergence::{vgg16 as vgg_task, Mode};
use pipedream_hw::{ClusterPreset, Precision};
use pipedream_model::zoo;
use pipedream_sim::simulate_asp_iteration;
use std::fmt;

/// The comparison's numbers.
#[derive(Debug, Clone)]
pub struct AspComparison {
    /// ASP epochs to 48% accuracy.
    pub asp_epochs_to_48: f64,
    /// PipeDream (weight stashing) epochs to 48%.
    pub pd_epochs_to_48: f64,
    /// ASP time to 48% divided by PipeDream time to 48%.
    pub slowdown_to_48: f64,
    /// Whether ASP ever reaches the 68% target.
    pub asp_reaches_target: bool,
}

/// Run the comparison on 4 Cluster-B servers (32 GPUs).
pub fn run() -> AspComparison {
    let model = zoo::vgg16();
    let task = vgg_task();
    let topo = ClusterPreset::B.with_servers(4);
    let costs = model.costs(&topo.device, model.default_batch, Precision::Fp32);

    // Throughputs: ASP is pure compute; PipeDream from its best config.
    let asp_sps = simulate_asp_iteration(&costs, topo.total_workers()).samples_per_sec;
    let (_, pd_sim) = best_plan(&model, &topo, 48);
    let pd_sps = pd_sim.samples_per_sec;

    // Epochs to 48% under each statistical model.
    let asp_curve = Mode::Asp.apply(task.curve);
    let pd_curve = Mode::WeightStashing.apply(task.curve);
    let asp_epochs = asp_curve
        .epochs_to(0.48)
        .expect("ASP reaches 48% eventually");
    let pd_epochs = pd_curve.epochs_to(0.48).expect("stashing reaches 48%");

    let asp_time = asp_epochs / asp_sps;
    let pd_time = pd_epochs / pd_sps;
    AspComparison {
        asp_epochs_to_48: asp_epochs,
        pd_epochs_to_48: pd_epochs,
        slowdown_to_48: asp_time / pd_time,
        asp_reaches_target: Mode::Asp.apply(task.curve).epochs_to(task.target).is_some(),
    }
}

impl fmt::Display for AspComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§5.2 ASP comparison (VGG-16, 4 Cluster-B servers)\n")?;
        writeln!(
            f,
            "epochs to 48%: ASP {:.0}, PipeDream {:.0}",
            self.asp_epochs_to_48, self.pd_epochs_to_48
        )?;
        writeln!(
            f,
            "ASP is {:.1}x slower than PipeDream to 48% (paper: 7.4x)",
            self.slowdown_to_48
        )?;
        writeln!(
            f,
            "ASP reaches the 68% target: {} (paper: no)",
            self.asp_reaches_target
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn asp_is_much_slower_and_never_converges() {
        let c = super::run();
        assert!(!c.asp_reaches_target);
        assert!(
            c.slowdown_to_48 > 3.0,
            "ASP slowdown to 48%: {:.1}",
            c.slowdown_to_48
        );
    }
}
