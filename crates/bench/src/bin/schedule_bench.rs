//! `schedule_bench` — machine-readable memory-schedule benchmark.
//!
//! Trains the same 8-layer model on the same 4-stage pipeline once per
//! `ScheduleKind` (vanilla 1F1B, 2BW, recomputation, 2BW+recomputation)
//! and writes per-schedule throughput, measured memory gauges, and the
//! simulator's peak-memory prediction as JSON so CI can gate and diff
//! them per commit:
//!
//! ```text
//! schedule_bench [OUT.json] [--assert-2bw-max-versions N]
//!                [--assert-memory-saving]
//! ```
//!
//! CI's `memory-smoke` job runs this with both gates: no 2BW run may
//! ever hold more than two weight versions at any stage, and the
//! memory-efficient schedules must actually beat vanilla on the measured
//! footprint (2BW on weight versions, recomputation on live activation
//! bytes).

use pipedream_core::schedule::Schedule;
use pipedream_core::stash::ScheduleKind;
use pipedream_core::PipelineConfig;
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::profiler::profile_sequential;
use pipedream_runtime::trainer::train_pipeline;
use pipedream_runtime::{LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_sim::PipelineSim;
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Relu, Tanh};
use pipedream_tensor::Sequential;
use serde::Serialize;

fn mlp(seed: u64) -> Sequential {
    let mut r = rng(seed);
    Sequential::new("mlp8")
        .push(Linear::new(8, 32, &mut r))
        .push(Tanh::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Relu::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Tanh::new())
        .push(Linear::new(32, 32, &mut r))
        .push(Linear::new(32, 4, &mut r))
}

#[derive(Serialize)]
struct ScheduleRow {
    /// Canonical schedule id (`vanilla`, `2bw`, `recompute`,
    /// `2bw-recompute`).
    schedule: String,
    /// Measured training throughput, samples/s.
    samples_per_s: f64,
    /// Whole-run wall time, seconds.
    wall_time_s: f64,
    /// Final-epoch loss (sanity: the schedule still learns).
    final_loss: f32,
    /// Worst-stage gauges from the real run.
    versions_held_max: usize,
    stash_depth_max: usize,
    activation_bytes_max: u64,
    /// Total recomputation time across stages, ms (0 unless recomputing).
    recompute_ms: f64,
    /// Worst-stage measured footprint: versions × stage weight bytes +
    /// live activation bytes.
    measured_peak_bytes: u64,
    /// The simulator's worst-worker peak prediction for this schedule.
    sim_peak_bytes: u64,
}

#[derive(Serialize)]
struct ScheduleBenchReport {
    model: String,
    plan: String,
    stages: usize,
    epochs: usize,
    rows: Vec<ScheduleRow>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_schedule.json".to_string();
    let mut max_versions: Option<usize> = None;
    let mut assert_saving = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--assert-2bw-max-versions" => {
                i += 1;
                max_versions =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--assert-2bw-max-versions needs a number");
                        std::process::exit(2);
                    }));
            }
            "--assert-memory-saving" => assert_saving = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
        i += 1;
    }

    let epochs = 3;
    let samples = 256;
    let data = blobs(samples, 8, 4, 0.6, 7);
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let topo = Topology::flat(
        Device::v100(),
        4,
        LinkModel::from_gbytes(10.0, 1e-6),
        "bench",
    );
    let mut probe = mlp(41);
    let (input, _) = data.minibatch(0, 16);
    let profile = profile_sequential(&mut probe, &input, 1, 2, &Device::v100());
    let costs = profile.costs(&Device::v100(), 16, Precision::Fp32);
    let stage_weights: Vec<u64> = config
        .stages()
        .iter()
        .map(|s| {
            probe.layers()[s.first_layer..=s.last_layer]
                .iter()
                .map(|l| l.param_count() as u64 * 4)
                .sum()
        })
        .collect();

    let mut rows = Vec::new();
    for kind in ScheduleKind::all() {
        let sim = PipelineSim::new(&costs, &topo, &Schedule::one_f_one_b(&config, 32))
            .with_schedule(kind)
            .run();
        let opts = TrainOpts {
            epochs,
            batch: 16,
            optim: OptimKind::Sgd {
                lr: 0.05,
                momentum: 0.0,
            },
            semantics: Semantics::Stashed,
            schedule: kind,
            lr_schedule: LrSchedule::Constant,
            ..TrainOpts::default()
        };
        let (_, report) = train_pipeline(mlp(41), &config, &data, &opts);
        let measured_peak = report
            .stage_obs
            .iter()
            .map(|o| o.versions_held_max as u64 * stage_weights[o.stage] + o.activation_bytes_max)
            .max()
            .unwrap_or(0);
        rows.push(ScheduleRow {
            schedule: kind.as_str().to_string(),
            samples_per_s: (epochs * samples) as f64 / report.wall_time_s.max(1e-9),
            wall_time_s: report.wall_time_s,
            final_loss: report.final_loss(),
            versions_held_max: report
                .stage_obs
                .iter()
                .map(|o| o.versions_held_max)
                .max()
                .unwrap_or(0),
            stash_depth_max: report
                .stage_obs
                .iter()
                .map(|o| o.stash_depth_max)
                .max()
                .unwrap_or(0),
            activation_bytes_max: report
                .stage_obs
                .iter()
                .map(|o| o.activation_bytes_max)
                .max()
                .unwrap_or(0),
            recompute_ms: report.stage_obs.iter().map(|o| o.recompute_us).sum::<u64>() as f64 / 1e3,
            measured_peak_bytes: measured_peak,
            sim_peak_bytes: sim.peak_memory_bytes.iter().copied().max().unwrap_or(0),
        });
    }

    let report = ScheduleBenchReport {
        model: "mlp8".to_string(),
        plan: config.label(),
        stages: config.num_stages(),
        epochs,
        rows,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if let Some(max) = max_versions {
        for row in &report.rows {
            let is_2bw = row.schedule.starts_with("2bw");
            if is_2bw && row.versions_held_max > max {
                eprintln!(
                    "GATE FAILED: {} held {} weight versions > {max}",
                    row.schedule, row.versions_held_max
                );
                failed = true;
            }
        }
    }
    if assert_saving {
        let get = |id: &str| report.rows.iter().find(|r| r.schedule == id).unwrap();
        let vanilla = get("vanilla");
        if get("2bw").versions_held_max >= vanilla.versions_held_max {
            eprintln!(
                "GATE FAILED: 2bw versions {} not below vanilla's {}",
                get("2bw").versions_held_max,
                vanilla.versions_held_max
            );
            failed = true;
        }
        if get("recompute").activation_bytes_max >= vanilla.activation_bytes_max {
            eprintln!(
                "GATE FAILED: recompute activations {} B not below vanilla's {} B",
                get("recompute").activation_bytes_max,
                vanilla.activation_bytes_max
            );
            failed = true;
        }
        if get("2bw-recompute").measured_peak_bytes >= vanilla.measured_peak_bytes {
            eprintln!(
                "GATE FAILED: 2bw-recompute peak {} B not below vanilla's {} B",
                get("2bw-recompute").measured_peak_bytes,
                vanilla.measured_peak_bytes
            );
            failed = true;
        }
        for row in &report.rows {
            if !row.final_loss.is_finite() || row.final_loss > 1.0 {
                eprintln!(
                    "GATE FAILED: {} final loss {} did not converge",
                    row.schedule, row.final_loss
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
