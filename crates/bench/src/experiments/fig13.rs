//! Figure 13: large-minibatch data parallelism with LARS vs PipeDream
//! (VGG-16, 8 GPUs on Cluster-C).
//!
//! Large minibatches amortize communication but hurt statistical
//! efficiency: BS 1024 (with LARS) converges, 4096 and 8192 never reach
//! the target; PipeDream still beats the best LARS option on
//! time-to-accuracy.

use crate::util::{best_plan, format_table};
use pipedream_convergence::{vgg16 as vgg_task, Mode};
use pipedream_hw::{Precision, ServerKind};
use pipedream_model::zoo;
use pipedream_sim::simulate_dp;
use std::fmt;

/// ImageNet-1K training-set size.
const IMAGENET_SAMPLES: f64 = 1_281_167.0;

/// One large-batch DP option.
#[derive(Debug, Clone)]
pub struct BatchOption {
    /// Global minibatch size.
    pub global_batch: usize,
    /// Epochs to the 68% target (None = never converges).
    pub epochs_to_target: Option<f64>,
    /// Hours per epoch.
    pub hours_per_epoch: f64,
    /// Hours to target (None = never).
    pub tta_hours: Option<f64>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// DP + LARS options at increasing batch size.
    pub options: Vec<BatchOption>,
    /// PipeDream's hours to target on the same 8 workers.
    pub pipedream_tta_hours: f64,
    /// PipeDream speedup over the best converging LARS option.
    pub speedup_over_best_lars: f64,
}

/// Run the experiment on 8 single-GPU Cluster-C servers.
pub fn run() -> Fig13 {
    let model = zoo::vgg16();
    let task = vgg_task();
    let workers = 8usize;
    let topo = ServerKind::TitanX1.cluster(workers);

    let options: Vec<BatchOption> = [1024usize, 4096, 8192]
        .into_iter()
        .map(|global_batch| {
            let per_gpu = global_batch / workers;
            let costs = model.costs(&topo.device, per_gpu, Precision::Fp32);
            let sps = simulate_dp(&costs, &topo, workers).samples_per_sec;
            let hours_per_epoch = IMAGENET_SAMPLES / sps / 3600.0;
            let epochs = task.epochs_to_target(Mode::LargeBatch {
                global_batch,
                lars: true,
            });
            BatchOption {
                global_batch,
                epochs_to_target: epochs,
                hours_per_epoch,
                tta_hours: epochs.map(|e| e * hours_per_epoch),
            }
        })
        .collect();

    // PipeDream on the same 8 workers, default per-GPU batch.
    let (_, sim) = best_plan(&model, &topo, 48);
    let pd_hours_per_epoch = IMAGENET_SAMPLES / sim.samples_per_sec / 3600.0;
    let pd_epochs = task.epochs_to_target(Mode::WeightStashing).unwrap();
    let pipedream_tta_hours = pd_epochs * pd_hours_per_epoch;
    let best_lars = options
        .iter()
        .filter_map(|o| o.tta_hours)
        .fold(f64::INFINITY, f64::min);
    Fig13 {
        options,
        pipedream_tta_hours,
        speedup_over_best_lars: best_lars / pipedream_tta_hours,
    }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: large minibatches + LARS vs PipeDream (VGG-16, 8 GPUs)\n"
        )?;
        let header = ["global batch", "epochs to 68%", "hours/epoch", "TTA hours"];
        let rows: Vec<Vec<String>> = self
            .options
            .iter()
            .map(|o| {
                vec![
                    o.global_batch.to_string(),
                    o.epochs_to_target
                        .map(|e| format!("{e:.0}"))
                        .unwrap_or_else(|| "never".into()),
                    format!("{:.2}", o.hours_per_epoch),
                    o.tta_hours
                        .map(|h| format!("{h:.1}"))
                        .unwrap_or_else(|| "∞".into()),
                ]
            })
            .collect();
        writeln!(f, "{}", format_table(&header, &rows))?;
        writeln!(
            f,
            "PipeDream TTA: {:.1} h — {:.1}x faster than the best LARS option \
             (paper: >2.4x)",
            self.pipedream_tta_hours, self.speedup_over_best_lars
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn only_1024_converges_and_pipedream_wins() {
        let f = super::run();
        assert!(f.options[0].tta_hours.is_some(), "1024 converges");
        assert!(f.options[1].tta_hours.is_none(), "4096 fails");
        assert!(f.options[2].tta_hours.is_none(), "8192 fails");
        assert!(
            f.speedup_over_best_lars > 1.2,
            "PipeDream beats LARS: {}",
            f.speedup_over_best_lars
        );
    }
}
