//! Micro-benchmarks for the tensor substrate (the runtime's compute cost).
//!
//! The fast tiled kernels and their naive scalar references are benched
//! side by side, so the speedup the kernel swap buys is a number in the
//! output, not a claim. `kernel_bench` (the bin target) measures the same
//! shapes with more iterations and writes machine-readable JSON for CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipedream_tensor::gemm::{self, Backend};
use pipedream_tensor::init::{normal, rng};
use pipedream_tensor::layers::{conv2d_direct, Conv2d, Linear};
use pipedream_tensor::Layer;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let a = normal(&[n, n], 1.0, &mut rng(1));
        let b_ = normal(&[n, n], 1.0, &mut rng(2));
        g.bench_with_input(BenchmarkId::new("fast", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b_)).recycle())
        });
        g.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul_naive(&b_)).recycle())
        });
    }
    g.finish();
}

fn bench_linear_fwd_bwd(c: &mut Criterion) {
    let mut layer = Linear::new(128, 128, &mut rng(3));
    let x = normal(&[32, 128], 1.0, &mut rng(4));
    c.bench_function("linear_128x128_fwd_bwd", |b| {
        b.iter(|| {
            let y = layer.forward(&x, 0);
            std::hint::black_box(layer.backward(&y, 0)).recycle();
        })
    });
}

fn bench_conv_fwd(c: &mut Criterion) {
    let mut conv = Conv2d::new(8, 16, 3, 1, 1, &mut rng(5));
    let x = normal(&[4, 8, 16, 16], 1.0, &mut rng(6));
    let weight = conv.params()[0].value.clone();
    let bias = conv.params()[1].value.clone();
    let mut g = c.benchmark_group("conv8x16k3_fwd");
    g.bench_function("im2col", |b| {
        let mut slot = 0u64;
        gemm::set_thread_backend(Backend::Fast);
        b.iter(|| {
            slot += 1;
            let y = conv.forward(&x, slot);
            conv.clear_slots();
            std::hint::black_box(y).recycle()
        })
    });
    g.bench_function("direct", |b| {
        b.iter(|| std::hint::black_box(conv2d_direct(&x, &weight, &bias, 1, 1)).recycle())
    });
    g.finish();
}

criterion_group!(benches, bench_matmul, bench_linear_fwd_bwd, bench_conv_fwd);
criterion_main!(benches);
