//! End-to-end daemon tests over real sockets: concurrent mixed traffic,
//! protocol errors as status codes (never daemon deaths), deadlines,
//! metrics exposure, and graceful shutdown.

use pipedream_obs::MetricsRegistry;
use pipedream_serve::{client, Client, ServeOptions, Server};
use serde::Value;
use std::sync::Arc;
use std::thread;

fn start_server() -> Server {
    Server::start(
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            threads: 3,
            queue: 16,
            cache_capacity: 64,
            cache_shards: 4,
            default_deadline_ms: 0,
            idle_timeout_ms: 0,
        },
        Arc::new(MetricsRegistry::new()),
    )
    .expect("bind on an ephemeral port")
}

#[test]
fn concurrent_plan_simulate_validate() {
    let server = start_server();
    let addr = server.addr();

    let workers: Vec<_> = (0..3)
        .map(|i| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..4 {
                    match i {
                        0 => {
                            let r = c
                                .post("/plan", r#"{"model": "alexnet", "servers": 2}"#)
                                .unwrap();
                            assert_eq!(r.status, 200, "{}", r.body);
                            let v: Value = serde_json::from_str(&r.body).unwrap();
                            assert!(
                                v.get("plan")
                                    .unwrap()
                                    .get("samples_per_sec")
                                    .unwrap()
                                    .as_f64()
                                    .unwrap()
                                    > 0.0
                            );
                        }
                        1 => {
                            let r = c
                                .post(
                                    "/simulate",
                                    r#"{"model": "alexnet", "servers": 2, "minibatches": 8}"#,
                                )
                                .unwrap();
                            assert_eq!(r.status, 200, "{}", r.body);
                            let v: Value = serde_json::from_str(&r.body).unwrap();
                            assert!(v.get("makespan_s").unwrap().as_f64().unwrap() > 0.0);
                        }
                        _ => {
                            let r = c
                                .post(
                                    "/validate",
                                    r#"{"model": "alexnet", "servers": 1,
                                        "config": [[0, 3, 2], [4, 7, 2]]}"#,
                                )
                                .unwrap();
                            assert_eq!(r.status, 200, "{}", r.body);
                            let v: Value = serde_json::from_str(&r.body).unwrap();
                            assert_eq!(v.get("valid"), Some(&Value::Bool(true)));
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // The repeated identical /plan bodies were answered from the cache.
    let stats = server.state().cache.stats();
    assert!(stats.hits > 0, "repeat plans hit the cache: {stats:?}");
    server.shutdown();
}

#[test]
fn protocol_errors_are_statuses_not_crashes() {
    let server = start_server();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();

    // Bad requests → 400 with a JSON error body.
    let r = c.post("/plan", r#"{"model": "made-up"}"#).unwrap();
    assert_eq!(r.status, 400);
    let v: Value = serde_json::from_str(&r.body).unwrap();
    assert!(v
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unknown model"));
    let r = c.post("/plan", "definitely not json").unwrap();
    assert_eq!(r.status, 400);

    // Degenerate planner inputs → 400 via the typed PlanError path.
    let r = c
        .post(
            "/plan",
            r#"{"profile": {"name": "empty", "layers": [],
                           "default_batch": 32, "input_elems": 1}, "servers": 1}"#,
        )
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("no layers"), "{}", r.body);

    // Infeasible memory limit → 400, not the CLI's panic.
    let r = c
        .post(
            "/plan",
            r#"{"model": "alexnet", "servers": 1, "memory_limit_bytes": 1}"#,
        )
        .unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    assert!(r.body.contains("no feasible partition"), "{}", r.body);

    // Unknown route → 404; wrong method → 405.
    let r = c.get("/nonsense").unwrap();
    assert_eq!(r.status, 404);
    let r = c.get("/plan").unwrap();
    assert_eq!(r.status, 405);

    // The daemon survived all of it.
    let r = c.get("/healthz").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.body.contains("ok"));
    server.shutdown();
}

#[test]
fn metrics_expose_cache_and_latency_series() {
    let server = start_server();
    let addr = server.addr();
    let mut c = Client::connect(addr).unwrap();
    for _ in 0..3 {
        let r = c
            .post("/plan", r#"{"model": "alexnet", "servers": 2}"#)
            .unwrap();
        assert_eq!(r.status, 200);
    }
    let r = c.get("/metrics").unwrap();
    assert_eq!(r.status, 200);
    for series in [
        "serve_requests_total{endpoint=\"plan\",status=\"200\"} 3",
        "serve_request_seconds_bucket{endpoint=\"plan\",le=",
        "serve_cache_hits_total 2",
        "serve_cache_misses_total 1",
        "serve_queue_depth",
        "serve_connections_total",
    ] {
        assert!(r.body.contains(series), "missing {series} in:\n{}", r.body);
    }
    server.shutdown();
}

#[test]
fn queue_wait_past_deadline_sheds_with_408() {
    // One worker with a short idle timeout: an idle connection pins the
    // worker for ~300 ms, so the next connection's first request waits in
    // the queue that long. A 40 ms deadline is admission-controlled to a
    // 408; a generous one still succeeds.
    let server = Server::start(
        ServeOptions {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            queue: 16,
            cache_capacity: 64,
            cache_shards: 4,
            default_deadline_ms: 0,
            idle_timeout_ms: 300,
        },
        Arc::new(MetricsRegistry::new()),
    )
    .unwrap();
    let addr = server.addr();

    // Pin the single worker: connect, complete one exchange, go silent.
    let mut pinner = Client::connect(addr).unwrap();
    let r = pinner.get("/healthz").unwrap();
    assert_eq!(r.status, 200);

    // This connection sits in the queue until the pinner idles out.
    let mut c = Client::connect(addr).unwrap();
    let r = c
        .post_with_deadline("/plan", r#"{"model": "alexnet", "servers": 1}"#, 40)
        .unwrap();
    assert_eq!(r.status, 408, "{}", r.body);
    assert!(r.body.contains("deadline"), "{}", r.body);

    // Same connection, next request: never queued, so it runs.
    let r = c
        .post_with_deadline("/plan", r#"{"model": "alexnet", "servers": 1}"#, 10_000)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    // Client think-time does not count against a deadline.
    thread::sleep(std::time::Duration::from_millis(60));
    let r = c
        .post_with_deadline("/plan", r#"{"model": "alexnet", "servers": 1}"#, 40)
        .unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    server.shutdown();
}

#[test]
fn one_shot_helpers_and_graceful_shutdown() {
    let server = start_server();
    let addr = server.addr();
    let r = client::get(addr, "/healthz").unwrap();
    assert_eq!(r.status, 200);
    let r = client::post(addr, "/plan", r#"{"model": "s2vt", "servers": 1}"#).unwrap();
    assert_eq!(r.status, 200);
    server.shutdown();
    // After shutdown the port no longer answers.
    assert!(client::get(addr, "/healthz").is_err());
}
