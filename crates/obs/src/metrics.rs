//! A process-wide metrics registry with Prometheus-style text export.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s of atomics:
//! registration takes a lock (cold path, once per metric name), but every
//! update afterwards is a single atomic op. Gauges store `f64` bit
//! patterns so rates and fractions fit naturally.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins floating-point gauge.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if `v` is larger (initial value 0).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Histogram bucket upper bounds in seconds: 1 µs … 100 s, one decade per
/// pair of buckets, plus +Inf. Tuned for span durations.
const BUCKET_BOUNDS_S: [f64; 17] = [
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0, 30.0,
    100.0,
];

/// Fixed-bucket histogram of durations in seconds.
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_S.len()],
    count: AtomicU64,
    /// Sum of observations in nanoseconds (atomic-friendly integer).
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record a duration in seconds.
    pub fn observe_secs(&self, secs: f64) {
        for (i, &b) in BUCKET_BOUNDS_S.iter().enumerate() {
            if secs <= b {
                self.buckets[i].fetch_add(1, Ordering::Relaxed);
                break;
            }
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add((secs * 1e9).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations in seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Mean observation in seconds (0 when empty).
    pub fn mean_secs(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_secs() / n as f64
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Named registry of counters/gauges/histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. Panics if the name is already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.inner.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.inner.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.inner.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Full series key `name{k="v",...}`. Labels render in the given
    /// order; values are not escaped, so keep them to plain
    /// identifiers/numbers (stage indices, span-kind names).
    fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
        if labels.is_empty() {
            return name.to_string();
        }
        let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{name}{{{}}}", body.join(","))
    }

    /// Get or create the counter `name{labels}`. Series of the same
    /// family share one `# TYPE` line in the Prometheus dump.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&Self::series_key(name, labels))
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&Self::series_key(name, labels))
    }

    /// Get or create the histogram `name{labels}`. The `le` bucket label
    /// is merged into the series' label set on export.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&Self::series_key(name, labels))
    }

    /// Render every metric in the Prometheus text exposition format,
    /// names sorted, suitable for scraping or a `--metrics` dump. Labeled
    /// series registered via the `*_labeled` constructors render with
    /// their label sets and one `# TYPE` line per metric family.
    pub fn render_prometheus(&self) -> String {
        let m = self.inner.lock();
        let mut out = String::new();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (key, metric) in m.iter() {
            // A key is either a bare family name or `family{label="v",..}`.
            let (family, labels) = match key.find('{') {
                Some(i) => (&key[..i], Some(&key[i + 1..key.len() - 1])),
                None => (key.as_str(), None),
            };
            let mut type_line = |out: &mut String, kind: &str| {
                if typed.insert(family.to_string()) {
                    out.push_str(&format!("# TYPE {family} {kind}\n"));
                }
            };
            match metric {
                Metric::Counter(c) => {
                    type_line(&mut out, "counter");
                    out.push_str(&format!("{key} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    type_line(&mut out, "gauge");
                    out.push_str(&format!("{key} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    type_line(&mut out, "histogram");
                    let bucket = |le: &str| match labels {
                        Some(body) => format!("{family}_bucket{{{body},le=\"{le}\"}}"),
                        None => format!("{family}_bucket{{le=\"{le}\"}}"),
                    };
                    let suffixed = |suffix: &str| match labels {
                        Some(body) => format!("{family}_{suffix}{{{body}}}"),
                        None => format!("{family}_{suffix}"),
                    };
                    let mut cumulative = 0u64;
                    for (i, &b) in BUCKET_BOUNDS_S.iter().enumerate() {
                        cumulative += h.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!("{} {cumulative}\n", bucket(&b.to_string())));
                    }
                    out.push_str(&format!(
                        "{} {}\n{} {}\n{} {}\n",
                        bucket("+Inf"),
                        h.count(),
                        suffixed("sum"),
                        h.sum_secs(),
                        suffixed("count"),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("mb_total");
        c.add(3);
        c.inc();
        assert_eq!(reg.counter("mb_total").get(), 4);
        let g = reg.gauge("busy_frac");
        g.set(0.75);
        assert_eq!(reg.gauge("busy_frac").get(), 0.75);
        g.set_max(0.5);
        assert_eq!(g.get(), 0.75);
        g.set_max(0.9);
        assert_eq!(g.get(), 0.9);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = Histogram::default();
        h.observe_secs(2e-6);
        h.observe_secs(5e-3);
        h.observe_secs(0.5);
        assert_eq!(h.count(), 3);
        assert!((h.mean_secs() - (2e-6 + 5e-3 + 0.5) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn prometheus_text_is_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").inc();
        reg.gauge("a_frac").set(0.25);
        reg.histogram("op_seconds").observe_secs(1e-3);
        let text = reg.render_prometheus();
        let a = text.find("a_frac").unwrap();
        let z = text.find("z_total").unwrap();
        assert!(a < z, "names sorted:\n{text}");
        assert!(text.contains("# TYPE z_total counter"));
        assert!(text.contains("# TYPE op_seconds histogram"));
        assert!(text.contains("op_seconds_bucket{le=\"0.001\"} 1"));
        assert!(text.contains("op_seconds_count 1"));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let reg = MetricsRegistry::new();
        reg.gauge_labeled("pipedream_stage_busy_frac", &[("stage", "0")])
            .set(0.5);
        reg.gauge_labeled("pipedream_stage_busy_frac", &[("stage", "1")])
            .set(0.25);
        reg.counter_labeled("events_total", &[("kind", "fwd"), ("stage", "2")])
            .add(7);
        let text = reg.render_prometheus();
        assert_eq!(
            text.matches("# TYPE pipedream_stage_busy_frac gauge")
                .count(),
            1,
            "one TYPE line per family:\n{text}"
        );
        assert!(text.contains("pipedream_stage_busy_frac{stage=\"0\"} 0.5"));
        assert!(text.contains("pipedream_stage_busy_frac{stage=\"1\"} 0.25"));
        assert!(text.contains("events_total{kind=\"fwd\",stage=\"2\"} 7"));
    }

    #[test]
    fn labeled_histogram_merges_le_into_label_set() {
        let reg = MetricsRegistry::new();
        reg.histogram_labeled("span_seconds", &[("kind", "bwd")])
            .observe_secs(1e-3);
        let text = reg.render_prometheus();
        assert!(
            text.contains("span_seconds_bucket{kind=\"bwd\",le=\"0.001\"} 1"),
            "le merged after existing labels:\n{text}"
        );
        assert!(text.contains("span_seconds_bucket{kind=\"bwd\",le=\"+Inf\"} 1"));
        assert!(text.contains("span_seconds_count{kind=\"bwd\"} 1"));
        assert!(text.contains("span_seconds_sum{kind=\"bwd\"}"));
    }

    #[test]
    fn labeled_handle_is_the_same_series_across_calls() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("c_total", &[("stage", "3")]).add(2);
        reg.counter_labeled("c_total", &[("stage", "3")]).inc();
        assert_eq!(reg.counter_labeled("c_total", &[("stage", "3")]).get(), 3);
        // A different label value is a different series.
        assert_eq!(reg.counter_labeled("c_total", &[("stage", "4")]).get(), 0);
    }
}
