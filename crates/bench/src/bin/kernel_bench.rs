//! `kernel_bench` — machine-readable kernel benchmarks for CI.
//!
//! Times the fast tiled kernels against their naive scalar references on
//! the shapes the issue tracker pins (256³ matmul, 3×3 convolution), plus
//! a steady-state pipeline training step, and writes the results as JSON.
//!
//! ```text
//! kernel_bench [OUT.json]       # default BENCH_kernels.json
//! ```
//!
//! CI's `bench-smoke` job runs this and uploads the JSON as an artifact,
//! so kernel regressions show up as a diffable number per commit.

use pipedream_core::PipelineConfig;
use pipedream_runtime::trainer::train_pipeline;
use pipedream_runtime::TrainOpts;
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::{normal, rng};
use pipedream_tensor::layers::{conv2d_direct, Conv2d, Linear, Tanh};
use pipedream_tensor::{Layer, Sequential};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct KernelResult {
    name: String,
    fast_ms: f64,
    naive_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    kernels: Vec<KernelResult>,
    pipeline_step_ms: f64,
}

/// Median of `iters` timed runs of `f`, in milliseconds.
fn time_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up: populates the buffer pool and the branch predictor
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    // Minimum, not mean: this is the noise-robust estimator for a
    // single-core microbenchmark on shared hardware.
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[0]
}

fn bench_matmul_256() -> KernelResult {
    let a = normal(&[256, 256], 1.0, &mut rng(1));
    let b = normal(&[256, 256], 1.0, &mut rng(2));
    let fast_ms = time_ms(25, || a.matmul(&b).recycle());
    let naive_ms = time_ms(9, || a.matmul_naive(&b).recycle());
    KernelResult {
        name: "matmul_256x256x256".into(),
        fast_ms,
        naive_ms,
        speedup: naive_ms / fast_ms,
    }
}

fn bench_conv_3x3() -> KernelResult {
    // A mid-size convolution layer: 8→16 channels, 3×3 kernel, 32×32 map.
    let mut conv = Conv2d::new(8, 16, 3, 1, 1, &mut rng(3));
    let x = normal(&[4, 8, 32, 32], 1.0, &mut rng(4));
    let weight = conv.params()[0].value.clone();
    let bias = conv.params()[1].value.clone();
    let mut slot = 0u64;
    let fast_ms = time_ms(15, || {
        slot += 1;
        conv.forward(&x, slot).recycle();
        conv.clear_slots();
    });
    let naive_ms = time_ms(5, || conv2d_direct(&x, &weight, &bias, 1, 1).recycle());
    KernelResult {
        name: "conv_8x16_k3_32x32".into(),
        fast_ms,
        naive_ms,
        speedup: naive_ms / fast_ms,
    }
}

/// Steady-state 1F1B step time on a 2-stage pipeline (per minibatch).
fn bench_pipeline_step() -> f64 {
    let mut r = rng(5);
    let model = Sequential::new("bench")
        .push(Linear::new(16, 64, &mut r))
        .push(Tanh::new())
        .push(Linear::new(64, 64, &mut r))
        .push(Tanh::new())
        .push(Linear::new(64, 4, &mut r));
    let data = blobs(512, 16, 4, 0.6, 9);
    let config = PipelineConfig::straight(5, &[2]);
    let opts = TrainOpts {
        epochs: 3,
        batch: 16,
        ..TrainOpts::default()
    };
    let minibatches = (opts.epochs * data.num_minibatches(opts.batch)) as f64;
    let (_, report) = train_pipeline(model, &config, &data, &opts);
    report.wall_time_s * 1e3 / minibatches
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    let report = BenchReport {
        kernels: vec![bench_matmul_256(), bench_conv_3x3()],
        pipeline_step_ms: bench_pipeline_step(),
    };
    for k in &report.kernels {
        println!(
            "{:24} fast {:8.3} ms  naive {:8.3} ms  speedup {:5.2}x",
            k.name, k.fast_ms, k.naive_ms, k.speedup
        );
    }
    println!(
        "pipeline_step            {:8.3} ms",
        report.pipeline_step_ms
    );
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}
