//! Figure 17: bytes communicated per training sample — DP vs the best
//! non-DP configuration, 4 GPUs on Cluster-A.
//!
//! Pipelining slashes communication for the dense-weight models (GNMT,
//! VGG) but *increases* it for ResNet-50 (big activations, small weights)
//! — exactly why the optimizer picks DP for ResNet-50.

use crate::util::{format_table, pipeline_throughput};
use pipedream_core::estimates::{dp_bytes_per_sample, pp_bytes_per_sample};
use pipedream_core::Planner;
use pipedream_hw::{ClusterPreset, Precision};
use pipedream_model::zoo;
use std::fmt;

/// One model's per-sample communication comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// Model name.
    pub model: String,
    /// Best non-DP configuration used.
    pub config: String,
    /// DP bytes per sample.
    pub dp_bytes: f64,
    /// Best non-DP bytes per sample.
    pub pp_bytes: f64,
}

/// The figure's rows.
#[derive(Debug, Clone)]
pub struct Fig17 {
    /// One row per model.
    pub rows: Vec<Row>,
}

/// Run the experiment.
pub fn run() -> Fig17 {
    let topo = ClusterPreset::A.with_servers(1); // 4 GPUs
    let rows = [zoo::gnmt8(), zoo::gnmt16(), zoo::vgg16(), zoo::resnet50()]
        .into_iter()
        .map(|model| {
            let costs = model.costs(&topo.device, model.default_batch, Precision::Fp32);
            let planner = Planner::new(&model, &topo);
            // Best *non-DP* option: the fastest non-DP candidate as
            // actually executed (simulated) — what PipeDream would deploy
            // if forced off data parallelism.
            let best_non_dp = planner
                .enumerate_configs()
                .into_iter()
                .filter(|c| !c.is_data_parallel())
                .max_by(|a, b| {
                    let ta = pipeline_throughput(&model, &topo, a, 32).samples_per_sec;
                    let tb = pipeline_throughput(&model, &topo, b, 32).samples_per_sec;
                    ta.partial_cmp(&tb).unwrap()
                })
                .expect("non-DP candidates exist");
            Row {
                model: model.name.clone(),
                config: best_non_dp.label(),
                dp_bytes: dp_bytes_per_sample(&costs, 4),
                pp_bytes: pp_bytes_per_sample(&costs, &best_non_dp),
            }
        })
        .collect();
    Fig17 { rows }
}

impl Fig17 {
    /// Row by model name.
    pub fn row(&self, model: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.model == model)
    }
}

impl fmt::Display for Fig17 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 17: bytes communicated per training sample (4 GPUs, Cluster-A)\n"
        )?;
        let header = [
            "model",
            "best non-DP config",
            "DP",
            "best non-DP",
            "reduction",
        ];
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.config.clone(),
                    format!("{:.2} MB", r.dp_bytes / 1e6),
                    format!("{:.2} MB", r.pp_bytes / 1e6),
                    format!("{:+.0}%", (1.0 - r.pp_bytes / r.dp_bytes) * 100.0),
                ]
            })
            .collect();
        write!(f, "{}", format_table(&header, &rows))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn pipelining_helps_dense_models_hurts_resnet() {
        let f = super::run();
        for model in ["GNMT-8", "GNMT-16", "VGG-16"] {
            let r = f.row(model).unwrap();
            assert!(
                r.pp_bytes < 0.5 * r.dp_bytes,
                "{model}: pp {} vs dp {}",
                r.pp_bytes,
                r.dp_bytes
            );
        }
        let resnet = f.row("ResNet-50").unwrap();
        assert!(
            resnet.pp_bytes > resnet.dp_bytes,
            "ResNet-50's best non-DP config must communicate more than DP"
        );
    }
}
