//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — with a deliberately small
//! measurement loop: one warm-up call, then a handful of timed iterations,
//! reporting the mean to stdout. No statistics, plots, or baselines. When
//! the binary is run with `--test` (as `cargo test` does for bench
//! targets), everything executes exactly once so the suite stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Number of timed iterations per benchmark outside test mode.
const TIMED_ITERS: u32 = 5;

/// Re-export position matching `criterion::black_box`.
pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.test_mode, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    test_mode: bool,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stand-in's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.test_mode,
            &mut f,
        );
        self
    }

    /// Run a parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name plus parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iters: u32,
    total: Duration,
    measured: bool,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, and the only call in test mode
        if self.iters == 0 {
            self.measured = true;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.total = start.elapsed();
        self.measured = true;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, test_mode: bool, f: &mut F) {
    let mut b = Bencher {
        iters: if test_mode { 0 } else { TIMED_ITERS },
        total: Duration::ZERO,
        measured: false,
    };
    f(&mut b);
    if test_mode {
        println!("{label}: ok (test mode)");
    } else if b.measured {
        let mean = b.total / TIMED_ITERS;
        println!("{label}: {mean:?} (mean of {TIMED_ITERS})");
    } else {
        println!("{label}: no measurement (closure never called iter)");
    }
}

/// Collect benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn api_shape_works_end_to_end() {
        let mut c = Criterion { test_mode: true };
        sample_bench(&mut c);
        c.bench_function(format!("fmt_{}", 1), |b| b.iter(|| 1 + 1));
        let id = BenchmarkId::new("name", "param");
        assert_eq!(id.label, "name/param");
    }
}
