//! `sim_bench` — machine-readable discrete-event-simulator benchmarks.
//!
//! Times `simulate_pipeline` end-to-end at pipeline depths of 8, 64 and
//! 512 stages: simulator events processed per second (every forward /
//! backward / sync / stall interval the run emits is one event) and
//! wall-clock cost per *simulated* minibatch. Writes the results as JSON
//! so CI can diff them per commit.
//!
//! ```text
//! sim_bench [OUT.json] [--assert-min-events-per-sec X]
//! ```
//!
//! CI's `analyze-smoke` job runs this with the gate set: a planner-scale
//! sweep replays thousands of candidate schedules through the simulator,
//! so a throughput regression here slows every `plan`/`analyze` flow.

use pipedream_core::schedule::Schedule;
use pipedream_core::PipelineConfig;
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::zoo;
use pipedream_sim::simulate_pipeline;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct DepthResult {
    /// Pipeline depth (stages, one worker each).
    stages: usize,
    /// Minibatches simulated.
    minibatches: u64,
    /// Timeline intervals the run emitted (compute + comm + stalls).
    events: u64,
    /// Wall-clock for the whole simulation, milliseconds (min of runs).
    wall_ms: f64,
    /// Simulator events processed per second.
    events_per_sec: f64,
    /// Wall-clock microseconds per simulated minibatch.
    us_per_minibatch: f64,
}

#[derive(Serialize)]
struct SimBenchReport {
    depths: Vec<DepthResult>,
    /// Worst (lowest) events/sec across the sweep — what the CI gate checks.
    min_events_per_sec: f64,
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn bench_depth(stages: usize, minibatches: u64) -> DepthResult {
    // One layer per stage keeps the partition trivial so depth is the
    // only variable; costs are uniform and comm is cheap but nonzero.
    let costs =
        zoo::uniform(stages, 1e9, 10_000, 10_000).costs(&Device::v100(), 32, Precision::Fp32);
    let boundaries: Vec<usize> = (0..stages - 1).collect();
    let config = PipelineConfig::straight(stages, &boundaries);
    let topo = Topology::flat(Device::v100(), stages, LinkModel::new(1e11, 1e-6), "bench");
    let schedule = Schedule::one_f_one_b(&config, minibatches);

    // Min of 3 timed runs: noise-robust on shared CI hardware.
    let mut events = 0u64;
    let mut wall_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let r = simulate_pipeline(&costs, &topo, &schedule);
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        events = (r
            .timeline
            .per_worker
            .iter()
            .map(|w| w.len() as u64)
            .sum::<u64>())
            + r.comm_timeline
                .per_worker
                .iter()
                .map(|w| w.len() as u64)
                .sum::<u64>();
        std::hint::black_box(&r);
        wall_ms = wall_ms.min(elapsed);
    }
    DepthResult {
        stages,
        minibatches,
        events,
        wall_ms,
        events_per_sec: events as f64 / (wall_ms / 1e3),
        us_per_minibatch: wall_ms * 1e3 / minibatches as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_sim.json".to_string());

    let depths: Vec<DepthResult> = [(8usize, 512u64), (64, 256), (512, 64)]
        .iter()
        .map(|&(stages, mbs)| bench_depth(stages, mbs))
        .collect();
    let min_events_per_sec = depths
        .iter()
        .map(|d| d.events_per_sec)
        .fold(f64::INFINITY, f64::min);
    let report = SimBenchReport {
        depths,
        min_events_per_sec,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write report");
    println!("{json}");
    for d in &report.depths {
        eprintln!(
            "{:>4} stages x {:>4} mbs: {:>9} events in {:>8.2} ms -> {:>12.0} events/s, {:>8.1} us/mb",
            d.stages, d.minibatches, d.events, d.wall_ms, d.events_per_sec, d.us_per_minibatch
        );
    }
    eprintln!("wrote {out_path}");

    if let Some(min) =
        arg_value("--assert-min-events-per-sec").map(|v| v.parse::<f64>().expect("events/sec"))
    {
        if report.min_events_per_sec < min {
            eprintln!(
                "FAIL: {:.0} events/s < required {min:.0}",
                report.min_events_per_sec
            );
            std::process::exit(1);
        }
    }
}
