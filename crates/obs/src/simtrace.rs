//! Bridge from the discrete-event simulator to the observability trace
//! schema.
//!
//! [`sim_to_snapshot`] converts a [`SimResult`] into the *same*
//! [`TraceSnapshot`] shape the runtime records, so everything downstream
//! — the Chrome exporter, [`crate::critical_path::analyze_trace`], the
//! `pipedream analyze` CLI — works identically on simulated and measured
//! runs, and a simulated critical path can be diffed against a measured
//! one stage by stage.
//!
//! Mapping rules:
//!
//! * Worker `w` becomes track `stage{s}.replica{r}` via
//!   [`PipelineConfig::stage_of_worker`] — the exact names the runtime
//!   uses, so `TrackEvents::stage`/`replica()` parse the same way.
//! * `Forward(mb)`/`Backward(mb)` intervals become `Fwd`/`Bwd` spans. The
//!   idle gap *before* each op is folded into the span with a nested
//!   `RecvWait` covering it: in the simulator a worker that is not
//!   computing is blocked on its input dependency, which is precisely
//!   what the runtime's receive wait measures. This keeps the simulated
//!   schema indistinguishable from the measured one for the analyzer.
//! * `Sync` becomes a `GradSync` span, `Checkpoint` a `Checkpoint` span,
//!   `Stall` a `Stalled` span; `Flush` carries no work and is dropped.
//! * The communication timeline is intentionally *not* emitted as spans:
//!   its intervals overlap the compute rows they feed and would corrupt
//!   the per-track toplevel partition. Transfer latency is already
//!   visible as the downstream stage's `RecvWait`.

use crate::event::{Event, SpanKind};
use crate::recorder::{TraceSnapshot, TrackEvents};
use pipedream_core::config::PipelineConfig;
use pipedream_sim::{SimResult, WorkKind};

/// Seconds → integer nanoseconds, clamped at zero.
fn ns(seconds: f64) -> u64 {
    (seconds * 1e9).round().max(0.0) as u64
}

/// Convert a simulation result into the runtime's trace schema. Tracks
/// are named `stage{s}.replica{r}` and sorted by worker id, matching a
/// live [`crate::recorder::TraceSession`] snapshot of the same config.
pub fn sim_to_snapshot(result: &SimResult, config: &PipelineConfig) -> TraceSnapshot {
    let mut tracks = Vec::with_capacity(result.timeline.per_worker.len());
    for (w, intervals) in result.timeline.per_worker.iter().enumerate() {
        let (stage, replica) = config.stage_of_worker(w);
        let mut events: Vec<Event> = Vec::with_capacity(intervals.len() * 2);
        let mut prev_end = 0.0f64;
        for iv in intervals {
            let (start_ns, end_ns) = (ns(iv.start), ns(iv.end));
            match iv.kind {
                WorkKind::Forward(mb) | WorkKind::Backward(mb) => {
                    // Extend the span back over the wait that preceded it;
                    // a nested RecvWait accounts the blocked portion.
                    let gap_ns = ns(prev_end.min(iv.start));
                    let kind = match iv.kind {
                        WorkKind::Forward(_) => SpanKind::Fwd { mb },
                        _ => SpanKind::Bwd { mb },
                    };
                    if gap_ns < start_ns {
                        events.push(Event::span(kind, gap_ns, end_ns));
                        events.push(Event::span(SpanKind::RecvWait { mb }, gap_ns, start_ns));
                    } else {
                        events.push(Event::span(kind, start_ns, end_ns));
                    }
                }
                WorkKind::Sync => events.push(Event::span(SpanKind::GradSync, start_ns, end_ns)),
                WorkKind::Checkpoint => {
                    events.push(Event::span(SpanKind::Checkpoint, start_ns, end_ns))
                }
                WorkKind::Stall => events.push(Event::span(SpanKind::Stalled, start_ns, end_ns)),
                WorkKind::Flush => {}
            }
            prev_end = prev_end.max(iv.end);
        }
        events.sort_by_key(|e| (e.start_ns, e.end_ns));
        tracks.push(TrackEvents {
            name: format!("stage{stage}.replica{replica}"),
            stage: Some(stage),
            events,
            dropped: 0,
        });
    }
    TraceSnapshot { tracks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{parse_chrome_trace, render_chrome_trace};
    use crate::critical_path::analyze_trace;
    use pipedream_hw::{Device, LinkModel, Precision, Topology};
    use pipedream_model::zoo;
    use pipedream_sim::pipeline::PipelineSim;

    fn sim_snapshot(minibatches: u64) -> (TraceSnapshot, SimResult) {
        let costs = zoo::uniform(4, 1e9, 1000, 1000).costs(&Device::v100(), 32, Precision::Fp32);
        let config = PipelineConfig::from_counts(&[(2, 1), (2, 1)]);
        let topo = Topology::flat(Device::v100(), 2, LinkModel::new(1e12, 1e-6), "flat");
        let sched = pipedream_core::Schedule::one_f_one_b(&config, minibatches);
        let result = PipelineSim::new(&costs, &topo, &sched).run();
        (sim_to_snapshot(&result, &config), result)
    }

    #[test]
    fn sim_tracks_match_runtime_naming_and_schema() {
        let (snap, result) = sim_snapshot(6);
        assert_eq!(snap.tracks.len(), 2);
        assert_eq!(snap.tracks[0].name, "stage0.replica0");
        assert_eq!(snap.tracks[0].stage, Some(0));
        assert_eq!(snap.tracks[0].replica(), Some(0));
        assert_eq!(snap.tracks[1].name, "stage1.replica0");
        // Every minibatch appears as Fwd and Bwd on both stages.
        for t in &snap.tracks {
            for mb in 0..6u64 {
                assert!(t
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, SpanKind::Fwd { mb: m } if m == mb)));
                assert!(t
                    .events
                    .iter()
                    .any(|e| matches!(e.kind, SpanKind::Bwd { mb: m } if m == mb)));
            }
        }
        // Stage 1 blocks on stage 0's first activation: a nested RecvWait.
        assert!(snap.tracks[1]
            .events
            .iter()
            .any(|e| matches!(e.kind, SpanKind::RecvWait { .. })));
        // Wall clock of the trace matches the simulated makespan.
        let wall_ns = snap
            .tracks
            .iter()
            .flat_map(|t| t.events.iter().map(|e| e.end_ns))
            .max()
            .unwrap();
        assert!((wall_ns as f64 * 1e-9 - result.makespan).abs() < 1e-6);
    }

    #[test]
    fn sim_trace_round_trips_through_chrome_format() {
        let (snap, _) = sim_snapshot(4);
        let doc = render_chrome_trace(&snap);
        let back = parse_chrome_trace(&doc).expect("sim trace parses");
        assert_eq!(render_chrome_trace(&back), doc);
        assert_eq!(back.tracks.len(), snap.tracks.len());
    }

    #[test]
    fn analyzer_runs_unchanged_on_sim_traces() {
        let (snap, result) = sim_snapshot(8);
        let report = analyze_trace(&snap);
        assert!((report.wall_s - result.makespan).abs() < 1e-6);
        // Exact attribution holds for synthesized traces too.
        for st in &report.per_stage {
            assert!(
                (st.breakdown.total_s() - report.wall_s).abs() < 1e-6,
                "stage {} total {} wall {}",
                st.stage,
                st.breakdown.total_s(),
                report.wall_s
            );
        }
        let cp: f64 = report.critical_path.iter().map(|c| c.seconds).sum();
        assert!((cp - report.wall_s).abs() < 1e-6);
        assert_eq!(report.minibatches, 8);
    }
}
