//! `trace-validate`: close the profile → plan → run loop with real traces.
//!
//! The planner predicts per-stage compute from a profile, the simulator
//! predicts pipeline throughput from the same numbers — and the runtime
//! *measures* both from a traced training run. This experiment profiles a
//! real model on this machine, plans a straight pipeline, trains it under a
//! [`pipedream_obs::TraceSession`], and reports measured-vs-predicted error
//! per stage plus measured-vs-simulated steady-state throughput.
//!
//! Profiling calibrates layer FLOPs against the *same* device model the
//! planner uses, so predictions come out in this machine's wall-clock
//! seconds and the comparison is apples-to-apples.

use crate::util::format_table;
use pipedream_core::schedule::Schedule;
use pipedream_core::{PipelineConfig, Planner};
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::profile_sequential;
use pipedream_obs::{TraceSession, TraceValidation};
use pipedream_runtime::trainer::train_pipeline;
use pipedream_runtime::{LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_sim::simulate_pipeline;
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Tanh};
use pipedream_tensor::{Sequential, Tensor};
use std::fmt;

const STAGES: usize = 4;
const BATCH: usize = 32;
const WIDTH: usize = 256;

fn model(seed: u64) -> Sequential {
    let mut r = rng(seed);
    let mut m = Sequential::new("trace-validate-mlp").push(Linear::new(16, WIDTH, &mut r));
    for _ in 0..(STAGES * 2 - 3) {
        m.push_boxed(Box::new(Tanh::new()));
        let lin = Linear::new(WIDTH, WIDTH, &mut r);
        m.push_boxed(Box::new(lin));
    }
    m.push_boxed(Box::new(Linear::new(WIDTH, 4, &mut r)));
    m
}

/// The experiment's result: the obs crate's validation record plus the
/// measured wall time it came from.
#[derive(Debug, Clone)]
pub struct TraceValidate {
    /// Measured-vs-planned comparison from the traced run.
    pub validation: TraceValidation,
    /// Wall time of the traced training run (seconds).
    pub wall_time_s: f64,
}

/// Run the experiment: profile, plan, simulate, train traced, compare.
pub fn run(epochs: usize) -> TraceValidate {
    // Stage workers run as threads on this machine; model the "cluster" as
    // flat workers of the calibration device with a near-free interconnect,
    // matching in-process channel transport.
    let topo = Topology::flat(
        Device::v100(),
        STAGES,
        LinkModel::new(1e14, 0.0),
        "local-threads",
    );

    // §3.1 profiling at the training batch size, calibrated to topo.device
    // so planner predictions land in real seconds on this machine.
    let mut prof_model = model(5);
    let profile = profile_sequential(
        &mut prof_model,
        &Tensor::zeros(&[BATCH, 16]),
        1,
        3,
        &topo.device,
    );
    let costs = profile.costs(&topo.device, BATCH, Precision::Fp32);
    let planner = Planner::from_costs(costs.clone(), &topo);
    let boundaries = planner
        .balanced_boundaries(STAGES)
        .expect("model splits into stages");
    let config = PipelineConfig::straight(profile.num_layers(), &boundaries);

    let predicted: Vec<f64> = planner
        .predicted_stage_times(&config)
        .iter()
        .map(|p| p.effective_s)
        .collect();
    let sim = simulate_pipeline(&costs, &topo, &Schedule::one_f_one_b(&config, 48));

    // The measured side: a real traced run on the same split.
    let data = blobs(256, 16, 4, 0.7, 11);
    let session = TraceSession::new();
    let opts = TrainOpts {
        epochs,
        batch: BATCH,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs: Some(session.clone()),
        ..TrainOpts::default()
    };
    let (_, report) = train_pipeline(model(5), &config, &data, &opts);
    let validation =
        pipedream_obs::validate(&session.snapshot(), &predicted, sim.per_minibatch_s, BATCH);
    TraceValidate {
        validation,
        wall_time_s: report.wall_time_s,
    }
}

impl TraceValidate {
    /// CSV: per-stage rows then a throughput summary row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,measured_s,predicted_s,error_frac\n");
        for s in &self.validation.per_stage {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.4}\n",
                s.stage, s.measured_s, s.predicted_s, s.error_frac
            ));
        }
        out.push_str(&format!(
            "throughput,{:.6},{:.6},{:.4}\n",
            self.validation.measured_per_minibatch_s,
            self.validation.simulated_per_minibatch_s,
            self.validation.throughput_error_frac
        ));
        out
    }
}

impl fmt::Display for TraceValidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Measured vs planned stage times ({}-stage pipeline, batch {}):\n",
            self.validation.per_stage.len(),
            BATCH
        )?;
        let header = ["stage", "measured (ms/mb)", "predicted (ms/mb)", "error"];
        let rows: Vec<Vec<String>> = self
            .validation
            .per_stage
            .iter()
            .map(|s| {
                vec![
                    s.stage.to_string(),
                    format!("{:.3}", s.measured_s * 1e3),
                    format!("{:.3}", s.predicted_s * 1e3),
                    format!("{:+.1}%", s.error_frac * 100.0),
                ]
            })
            .collect();
        f.write_str(&format_table(&header, &rows))?;
        writeln!(
            f,
            "\nsteady-state minibatch time: measured {:.3} ms vs simulated {:.3} ms ({:+.1}%)",
            self.validation.measured_per_minibatch_s * 1e3,
            self.validation.simulated_per_minibatch_s * 1e3,
            self.validation.throughput_error_frac * 100.0
        )?;
        writeln!(
            f,
            "throughput: measured {:.0} samples/s vs simulated {:.0} samples/s (run wall time {:.2}s)",
            self.validation.measured_samples_per_sec,
            self.validation.simulated_samples_per_sec,
            self.wall_time_s
        )
    }
}
