//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors
//! the exact API surface it uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), the [`Rng`] / [`SeedableRng`] traits, uniform
//! distributions ([`distributions::Uniform`]) and slice shuffling
//! ([`seq::SliceRandom`]). The generator is xoshiro256** seeded via
//! SplitMix64 — high-quality and deterministic, though its stream differs
//! from upstream `StdRng` (ChaCha12); seeds produce different (but equally
//! valid) synthetic datasets and initializations.

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f32`/`f64`: uniform in `[0, 1)`; integers: uniform over the type).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a standard distribution (for [`Rng::gen`]).
pub trait Standard: Sized {
    /// Sample from the type's standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_one<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Uniform distributions (the only family the workspace samples).
    use super::RngCore;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Types `Uniform` can range over. Keeping the constructors on one
    /// generic impl (rather than per-type inherent impls) lets
    /// `Uniform::new(a, b)` infer the type from its arguments.
    pub trait SampleUniform: Copy + PartialOrd {
        /// One uniform draw from `[low, high)` (or `[low, high]` when
        /// `inclusive`).
        fn sample_uniform<R: RngCore>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self;
    }

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(low: $t, high: $t, inclusive: bool, rng: &mut R) -> $t {
                    // For floats the closed/open distinction is a half-ulp
                    // affair; one affine map serves both.
                    let _ = inclusive;
                    let u = <$t as super::Standard>::sample_standard(rng);
                    low + (high - low) * u
                }
            }
        )*};
    }
    uniform_float!(f32, f64);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(low: $t, high: $t, inclusive: bool, rng: &mut R) -> $t {
                    let span = (high as i128 - low as i128) as u128
                        + if inclusive { 1 } else { 0 };
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform distribution over a half-open or closed interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Uniform {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.low, self.high, self.inclusive, rng)
        }
    }
}

pub mod seq {
    //! Sequence helpers.
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, if non-empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        let d = Uniform::new(-0.5f32, 0.5);
        for _ in 0..1000 {
            let x = d.sample(&mut r);
            assert!((-0.5..0.5).contains(&x));
        }
        let di = Uniform::new_inclusive(-3i64, 3);
        for _ in 0..1000 {
            let x = di.sample(&mut r);
            assert!((-3..=3).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_covers_range() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn float_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
