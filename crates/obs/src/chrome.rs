//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Array Format variant of the Trace Event spec inside a
//! `{"traceEvents": [...]}` envelope, loadable in `chrome://tracing` and
//! Perfetto. One thread (`tid`) per track: a `thread_name` metadata event
//! names it, complete (`"ph":"X"`) events carry the spans, and instant
//! (`"ph":"i"`) events mark faults/recoveries. Timestamps are microseconds
//! with nanosecond precision kept in the fraction.
//!
//! The document is built by hand rather than through a serializer so the
//! byte output is deterministic for golden-file tests.
//!
//! [`parse_chrome_trace`] is the inverse: it reads an exported document
//! back into a [`TraceSnapshot`] so the live-profiler aggregation can run
//! offline over a saved `--trace out.json` (`pipedream inspect
//! --from-trace`).

use crate::event::{Event, SpanKind};
use crate::recorder::{TraceSnapshot, TrackEvents};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with the nanosecond remainder as a 3-digit fraction.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render a snapshot as a Chrome trace_event JSON document.
pub fn render_chrome_trace(snap: &TraceSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for (tid, track) in snap.tracks.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&track.name)
            ),
            &mut first,
        );
        for ev in &track.events {
            let name = ev.kind.name();
            let cat = ev.kind.category();
            let args = match ev.kind.minibatch() {
                Some(mb) => format!(",\"args\":{{\"mb\":{mb}}}"),
                None => String::new(),
            };
            if ev.is_instant() {
                push(
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":0,\"tid\":{tid}{args}}}",
                        us(ev.start_ns)
                    ),
                    &mut first,
                );
            } else {
                push(
                    format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":0,\"tid\":{tid}{args}}}",
                        us(ev.start_ns),
                        us(ev.end_ns - ev.start_ns)
                    ),
                    &mut first,
                );
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Span kind from its exported name + optional `args.mb` payload.
fn kind_from_name(name: &str, mb: u64) -> Option<SpanKind> {
    Some(match name {
        "fwd" => SpanKind::Fwd { mb },
        "bwd" => SpanKind::Bwd { mb },
        "grad_sync" => SpanKind::GradSync,
        "stash_push" => SpanKind::StashPush { mb },
        "stash_pop" => SpanKind::StashPop { mb },
        "checkpoint" => SpanKind::Checkpoint,
        "recv_wait" => SpanKind::RecvWait { mb },
        "send_wait" => SpanKind::SendWait { mb },
        "stalled" => SpanKind::Stalled,
        "fault" => SpanKind::Fault,
        "recovery" => SpanKind::Recovery,
        "reconfig" => SpanKind::Reconfig,
        _ => return None,
    })
}

/// Microsecond float (with nanosecond fraction) back to nanoseconds.
fn ns_from_us(us: f64) -> u64 {
    (us * 1_000.0).round().max(0.0) as u64
}

/// Parse an exported Chrome trace document back into a [`TraceSnapshot`].
///
/// Track identity comes from the `thread_name` metadata events (one per
/// `tid`); a stage index is recovered from the `stageN.` name prefix the
/// runtime uses, leaving supervisor/coordinator tracks stage-less.
/// Unrecognized event names are skipped (a trace may come from a newer
/// build), but a document without `traceEvents` is an error.
pub fn parse_chrome_trace(doc: &str) -> Result<TraceSnapshot, String> {
    let v: serde_json::Value =
        serde_json::from_str(doc).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    // tid → track, in first-appearance order (matching export order).
    let mut order: Vec<u64> = Vec::new();
    let mut tracks: std::collections::BTreeMap<u64, TrackEvents> =
        std::collections::BTreeMap::new();
    for ev in events {
        let tid = ev.get("tid").and_then(|t| t.as_u64()).unwrap_or(0);
        let name = ev.get("name").and_then(|n| n.as_str()).unwrap_or("");
        let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let track = tracks.entry(tid).or_insert_with(|| {
            order.push(tid);
            TrackEvents {
                name: format!("track{tid}"),
                stage: None,
                events: Vec::new(),
                dropped: 0,
            }
        });
        match ph {
            "M" if name == "thread_name" => {
                if let Some(n) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(|n| n.as_str())
                {
                    track.name = n.to_string();
                    track.stage = n
                        .strip_prefix("stage")
                        .and_then(|rest| rest.split('.').next())
                        .and_then(|digits| digits.parse::<usize>().ok());
                }
            }
            "X" | "i" => {
                let mb = ev
                    .get("args")
                    .and_then(|a| a.get("mb"))
                    .and_then(|m| m.as_u64())
                    .unwrap_or(0);
                let Some(kind) = kind_from_name(name, mb) else {
                    continue;
                };
                let ts = ev.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
                let start_ns = ns_from_us(ts);
                let end_ns = if ph == "X" {
                    start_ns + ns_from_us(ev.get("dur").and_then(|d| d.as_f64()).unwrap_or(0.0))
                } else {
                    start_ns
                };
                track.events.push(Event {
                    kind,
                    start_ns,
                    end_ns,
                });
            }
            _ => {}
        }
    }
    Ok(TraceSnapshot {
        tracks: order
            .into_iter()
            .map(|tid| tracks.remove(&tid).unwrap())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, SpanKind};
    use crate::recorder::TrackEvents;

    fn sample() -> TraceSnapshot {
        TraceSnapshot {
            tracks: vec![
                TrackEvents {
                    name: "stage0.replica0".into(),
                    stage: Some(0),
                    events: vec![
                        Event {
                            kind: SpanKind::Fwd { mb: 0 },
                            start_ns: 1_500,
                            end_ns: 11_500,
                        },
                        Event {
                            kind: SpanKind::Bwd { mb: 0 },
                            start_ns: 20_000,
                            end_ns: 45_250,
                        },
                        Event {
                            kind: SpanKind::Checkpoint,
                            start_ns: 50_000,
                            end_ns: 60_000,
                        },
                    ],
                    dropped: 0,
                },
                TrackEvents {
                    name: "supervisor".into(),
                    stage: None,
                    events: vec![Event {
                        kind: SpanKind::Fault,
                        start_ns: 70_000,
                        end_ns: 70_000,
                    }],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_events() {
        let doc = render_chrome_trace(&sample());
        let v: serde_json::Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 metadata + 3 spans + 1 instant.
        assert_eq!(events.len(), 6);
        let f = |i: usize, k: &str| events[i].get(k).unwrap().clone();
        assert_eq!(f(0, "ph").as_str(), Some("M"));
        assert_eq!(
            f(0, "args").get("name").unwrap().as_str(),
            Some("stage0.replica0")
        );
        assert_eq!(f(1, "ph").as_str(), Some("X"));
        assert_eq!(f(1, "name").as_str(), Some("fwd"));
        assert_eq!(f(1, "args").get("mb").unwrap().as_u64(), Some(0));
        assert_eq!(f(5, "ph").as_str(), Some("i"));
        assert_eq!(f(5, "name").as_str(), Some("fault"));
        // µs timestamps: 1500 ns → 1.5 µs.
        assert_eq!(f(1, "ts").as_f64(), Some(1.5));
        assert_eq!(f(1, "dur").as_f64(), Some(10.0));
    }

    #[test]
    fn names_are_escaped() {
        let mut snap = sample();
        snap.tracks[0].name = "we\"ird\\name".into();
        let doc = render_chrome_trace(&snap);
        assert!(serde_json::from_str::<serde_json::Value>(&doc).is_ok());
    }

    #[test]
    fn parse_round_trips_the_rendered_trace() {
        let snap = sample();
        let doc = render_chrome_trace(&snap);
        let back = parse_chrome_trace(&doc).expect("parses");
        assert_eq!(back.tracks.len(), 2);
        assert_eq!(back.tracks[0].name, "stage0.replica0");
        assert_eq!(back.tracks[0].stage, Some(0));
        assert_eq!(back.tracks[1].name, "supervisor");
        assert_eq!(back.tracks[1].stage, None);
        // Every span survives with nanosecond-exact times (the export
        // keeps the ns remainder in the µs fraction).
        assert_eq!(back.tracks[0].events, snap.tracks[0].events);
        assert_eq!(back.tracks[1].events, snap.tracks[1].events);
    }

    #[test]
    fn parse_rejects_non_trace_documents() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"foo\":1}").is_err());
        // Unknown event names are skipped, not fatal.
        let doc = "{\"traceEvents\":[{\"name\":\"mystery\",\"ph\":\"X\",\
                    \"ts\":1.0,\"dur\":2.0,\"pid\":0,\"tid\":0}]}";
        let snap = parse_chrome_trace(doc).expect("parses");
        assert_eq!(snap.tracks.len(), 1);
        assert!(snap.tracks[0].events.is_empty());
    }

    #[test]
    fn golden_file_matches() {
        let doc = render_chrome_trace(&sample());
        let golden = include_str!("../tests/golden/chrome_trace.json");
        assert_eq!(
            doc, golden,
            "Chrome trace output drifted from tests/golden/chrome_trace.json; \
             update the golden file if the change is intentional"
        );
    }
}
