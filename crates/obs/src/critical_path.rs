//! Per-minibatch dependency-DAG reconstruction, critical-path extraction,
//! and typed bubble attribution.
//!
//! The aggregate busy/comm/bubble fractions of [`crate::analysis`] say a
//! stage idled; they cannot say *which dependency* put that idle time on
//! the end-to-end critical path. This module reconstructs the dependency
//! DAG the 1F1B schedule actually executed — from any
//! [`TraceSnapshot`], live or parsed back from a Chrome trace, measured
//! or simulated — and produces two exact accountings:
//!
//! 1. **Per-stage wall-clock attribution**: every nanosecond of every
//!    stage track is assigned a [`BubbleCause`] (compute, upstream wait,
//!    backpressure, grad-sync, recompute, 2BW group barrier, optimizer
//!    step, checkpoint, fault injection, fill/drain, idle). The causes of
//!    a track sum to the run's wall clock *by construction* — the
//!    accounting is an exact partition of `[0, wall]` done in integer
//!    nanoseconds, which the tests pin.
//! 2. **Critical-path attribution**: walking binding predecessors
//!    backward from the last span to finish (the same-track predecessor
//!    or the cross-stage data producer, whichever ended later), the run's
//!    makespan telescopes into per-stage, per-cause critical-path
//!    segments that also sum exactly to wall clock. A stage's share of
//!    the critical path is the honest measure of how much it bottlenecks
//!    the run — speeding up anything else cannot help.
//!
//! [`what_if`] turns the attribution into an Amdahl-style estimator:
//! scale one stage's per-minibatch service time and predict the
//! end-to-end steady-state gain, validated against the discrete-event
//! simulator in the integration tests.

use crate::analysis::measured_per_minibatch_s;
use crate::event::SpanKind;
use crate::recorder::{TraceSnapshot, TrackEvents};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Where a slice of a stage's wall clock went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BubbleCause {
    /// Useful forward/backward compute — not a bubble.
    Compute,
    /// Blocked on an upstream activation or downstream gradient arriving
    /// (`recv_wait` spans): the sender is the bottleneck.
    WaitUpstream,
    /// Blocked (or throttled) sending to a peer (`send_wait` spans) —
    /// includes injected send delays, which stall the sender's clock.
    Backpressure,
    /// Gradient all-reduce rendezvous across stage replicas.
    GradSync,
    /// Re-running the forward pass to rebuild dropped activations
    /// (recompute schedules).
    Recompute,
    /// 2BW update-group barrier: the coalesced grad-sync a double-buffered
    /// schedule pays once per group instead of once per minibatch.
    TwoBwBarrier,
    /// Optimizer step applying the update.
    OptimizerStep,
    /// Checkpoint writes.
    Checkpoint,
    /// Fault-injection stalls (`stalled` spans, gaps around `fault`
    /// instants).
    Injection,
    /// Pipeline fill/drain: idle before a track's first span or after its
    /// last one.
    FillDrain,
    /// Interior idle not attributable to any recorded dependency.
    Idle,
}

impl BubbleCause {
    /// Every cause, in display order.
    pub const ALL: [BubbleCause; 11] = [
        BubbleCause::Compute,
        BubbleCause::WaitUpstream,
        BubbleCause::Backpressure,
        BubbleCause::GradSync,
        BubbleCause::Recompute,
        BubbleCause::TwoBwBarrier,
        BubbleCause::OptimizerStep,
        BubbleCause::Checkpoint,
        BubbleCause::Injection,
        BubbleCause::FillDrain,
        BubbleCause::Idle,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            BubbleCause::Compute => "compute",
            BubbleCause::WaitUpstream => "wait_upstream",
            BubbleCause::Backpressure => "backpressure",
            BubbleCause::GradSync => "grad_sync",
            BubbleCause::Recompute => "recompute",
            BubbleCause::TwoBwBarrier => "2bw_barrier",
            BubbleCause::OptimizerStep => "optimizer_step",
            BubbleCause::Checkpoint => "checkpoint",
            BubbleCause::Injection => "injection",
            BubbleCause::FillDrain => "fill_drain",
            BubbleCause::Idle => "idle",
        }
    }

    /// Whether this cause is dead time rather than useful work.
    pub fn is_bubble(self) -> bool {
        !matches!(self, BubbleCause::Compute)
    }
}

/// Nanoseconds per cause; an exact partition of some wall-clock interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CauseBreakdown {
    /// Useful compute time (seconds). The remaining fields are bubbles.
    pub compute_s: f64,
    /// Upstream/downstream receive waits.
    pub wait_upstream_s: f64,
    /// Send-side stalls (including injected delays).
    pub backpressure_s: f64,
    /// Replica gradient-sync rendezvous.
    pub grad_sync_s: f64,
    /// Activation recomputation.
    pub recompute_s: f64,
    /// 2BW update-group barriers.
    pub two_bw_barrier_s: f64,
    /// Optimizer steps.
    pub optimizer_step_s: f64,
    /// Checkpoint writes.
    pub checkpoint_s: f64,
    /// Fault-injection stalls.
    pub injection_s: f64,
    /// Pipeline fill/drain idle.
    pub fill_drain_s: f64,
    /// Unattributed interior idle.
    pub idle_s: f64,
}

impl CauseBreakdown {
    /// Add `seconds` to one cause bucket.
    pub fn add(&mut self, cause: BubbleCause, seconds: f64) {
        *self.slot(cause) += seconds;
    }

    /// Seconds attributed to `cause`.
    pub fn get(&self, cause: BubbleCause) -> f64 {
        match cause {
            BubbleCause::Compute => self.compute_s,
            BubbleCause::WaitUpstream => self.wait_upstream_s,
            BubbleCause::Backpressure => self.backpressure_s,
            BubbleCause::GradSync => self.grad_sync_s,
            BubbleCause::Recompute => self.recompute_s,
            BubbleCause::TwoBwBarrier => self.two_bw_barrier_s,
            BubbleCause::OptimizerStep => self.optimizer_step_s,
            BubbleCause::Checkpoint => self.checkpoint_s,
            BubbleCause::Injection => self.injection_s,
            BubbleCause::FillDrain => self.fill_drain_s,
            BubbleCause::Idle => self.idle_s,
        }
    }

    fn slot(&mut self, cause: BubbleCause) -> &mut f64 {
        match cause {
            BubbleCause::Compute => &mut self.compute_s,
            BubbleCause::WaitUpstream => &mut self.wait_upstream_s,
            BubbleCause::Backpressure => &mut self.backpressure_s,
            BubbleCause::GradSync => &mut self.grad_sync_s,
            BubbleCause::Recompute => &mut self.recompute_s,
            BubbleCause::TwoBwBarrier => &mut self.two_bw_barrier_s,
            BubbleCause::OptimizerStep => &mut self.optimizer_step_s,
            BubbleCause::Checkpoint => &mut self.checkpoint_s,
            BubbleCause::Injection => &mut self.injection_s,
            BubbleCause::FillDrain => &mut self.fill_drain_s,
            BubbleCause::Idle => &mut self.idle_s,
        }
    }

    /// Sum across every cause.
    pub fn total_s(&self) -> f64 {
        BubbleCause::ALL.iter().map(|&c| self.get(c)).sum()
    }

    /// Sum across bubble (non-compute) causes.
    pub fn bubble_s(&self) -> f64 {
        self.total_s() - self.compute_s
    }

    /// Largest bubble bucket, if any time was lost at all.
    pub fn top_bubble(&self) -> Option<(BubbleCause, f64)> {
        BubbleCause::ALL
            .iter()
            .filter(|c| c.is_bubble())
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, s)| s > 0.0)
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Accumulate another breakdown into this one.
    pub fn merge(&mut self, other: &CauseBreakdown) {
        for c in BubbleCause::ALL {
            self.add(c, other.get(c));
        }
    }
}

/// One stage's exact wall-clock accounting, summed over replica tracks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageAttribution {
    /// Pipeline stage index.
    pub stage: usize,
    /// Replica tracks contributing (breakdown totals `wall × tracks`).
    pub tracks: usize,
    /// Where the stage's time went.
    pub breakdown: CauseBreakdown,
    /// Backward passes completed across the stage's replicas.
    pub minibatches: u64,
    /// Effective per-minibatch *service* time: work only this stage can
    /// absorb (compute + send stalls + recompute + optimizer + checkpoint)
    /// divided by minibatches and replica count — the quantity the
    /// Amdahl what-if scales.
    pub service_per_mb_s: f64,
}

/// One stage's share of the run's critical path.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CpContribution {
    /// Pipeline stage index.
    pub stage: usize,
    /// Critical-path seconds owned by this stage.
    pub seconds: f64,
    /// What the stage was doing during its critical-path segments.
    pub breakdown: CauseBreakdown,
}

/// The full causal analysis of one trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathReport {
    /// Wall clock of the trace (latest event end), seconds.
    pub wall_s: f64,
    /// Minibatches completed (max across stages).
    pub minibatches: u64,
    /// Measured steady-state seconds per minibatch (middle-half slope of
    /// stage-0 backward completions).
    pub per_minibatch_s: f64,
    /// Exact per-stage wall-clock attribution.
    pub per_stage: Vec<StageAttribution>,
    /// Per-stage critical-path share, indexed by stage (unranked; the
    /// seconds sum to `wall_s`).
    pub critical_path: Vec<CpContribution>,
    /// Spans on the critical path.
    pub cp_nodes: usize,
}

impl CriticalPathReport {
    /// Stages ranked by critical-path share, biggest bottleneck first.
    pub fn ranked(&self) -> Vec<&CpContribution> {
        let mut v: Vec<&CpContribution> = self.critical_path.iter().collect();
        v.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then(a.stage.cmp(&b.stage)));
        v
    }

    /// The stage owning the largest critical-path share.
    pub fn bottleneck_stage(&self) -> Option<usize> {
        self.ranked().first().map(|c| c.stage)
    }

    /// Per-stage attribution entry.
    pub fn stage(&self, stage: usize) -> Option<&StageAttribution> {
        self.per_stage.iter().find(|s| s.stage == stage)
    }
}

/// Amdahl-style prediction for speeding up one stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WhatIf {
    /// Stage being hypothetically sped up.
    pub stage: usize,
    /// Fractional service-time reduction applied (0.3 = 30% faster).
    pub speedup_frac: f64,
    /// Measured steady-state seconds per minibatch before the change.
    pub baseline_per_mb_s: f64,
    /// Predicted steady-state seconds per minibatch after the change.
    pub predicted_per_mb_s: f64,
    /// Predicted end-to-end gain: `1 - predicted/baseline`.
    pub predicted_gain_frac: f64,
}

/// How one toplevel span (or the gap before it) spends its time.
struct Node {
    stage: usize,
    kind: SpanKind,
    start_ns: u64,
    end_ns: u64,
    /// `(start, end, cause)` pieces tiling `[start_ns, end_ns]` exactly.
    pieces: Vec<(u64, u64, BubbleCause)>,
}

fn cause_of(kind: SpanKind, two_bw: bool) -> Option<BubbleCause> {
    Some(match kind {
        SpanKind::Fwd { .. } | SpanKind::Bwd { .. } => BubbleCause::Compute,
        SpanKind::RecvWait { .. } => BubbleCause::WaitUpstream,
        SpanKind::SendWait { .. } => BubbleCause::Backpressure,
        SpanKind::GradSync => {
            if two_bw {
                BubbleCause::TwoBwBarrier
            } else {
                BubbleCause::GradSync
            }
        }
        SpanKind::Recompute { .. } => BubbleCause::Recompute,
        SpanKind::OptStep { .. } => BubbleCause::OptimizerStep,
        SpanKind::Checkpoint => BubbleCause::Checkpoint,
        SpanKind::Stalled => BubbleCause::Injection,
        // Instant bookkeeping events carry no duration.
        SpanKind::StashPush { .. }
        | SpanKind::StashPop { .. }
        | SpanKind::SyncDeposit { .. }
        | SpanKind::SyncRelease { .. }
        | SpanKind::Fault
        | SpanKind::Recovery
        | SpanKind::Reconfig => return None,
    })
}

/// Partition a stage track into toplevel spans, each pre-sliced into
/// `(start, end, cause)` pieces: nested spans get their own cause, the
/// uncovered remainder inherits the toplevel span's cause.
fn build_nodes(stage: usize, track: &TrackEvents) -> Vec<Node> {
    // A sparse optimizer-step cadence (2BW gradient accumulation, GPipe
    // flush) means the per-group grad-sync is a *group barrier*, not a
    // per-minibatch rendezvous.
    let bwds = track
        .events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::Bwd { .. }))
        .count();
    let opts = track
        .events
        .iter()
        .filter(|e| matches!(e.kind, SpanKind::OptStep { .. }))
        .count();
    let two_bw = opts > 0 && opts * 2 <= bwds;

    let mut nodes: Vec<Node> = Vec::new();
    let mut spans: Vec<_> = track.events.iter().filter(|e| !e.is_instant()).collect();
    // At equal starts the enclosing (longer) span must be toplevel —
    // simulated traces emit a Fwd/Bwd and its nested RecvWait with the
    // same start timestamp.
    spans.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
    let mut i = 0;
    while i < spans.len() {
        let top = spans[i];
        let top_cause = cause_of(top.kind, two_bw).unwrap_or(BubbleCause::Idle);
        let mut pieces: Vec<(u64, u64, BubbleCause)> = Vec::new();
        let mut covered = top.start_ns;
        let mut j = i + 1;
        while j < spans.len() && spans[j].start_ns < top.end_ns {
            let nested = spans[j];
            if let Some(cause) = cause_of(nested.kind, two_bw) {
                let s = nested.start_ns.max(covered);
                let e = nested.end_ns.min(top.end_ns);
                if e > s {
                    if s > covered {
                        pieces.push((covered, s, top_cause));
                    }
                    pieces.push((s, e, cause));
                    covered = e;
                }
            }
            j += 1;
        }
        if top.end_ns > covered {
            pieces.push((covered, top.end_ns, top_cause));
        }
        nodes.push(Node {
            stage,
            kind: top.kind,
            start_ns: top.start_ns,
            end_ns: top.end_ns,
            pieces,
        });
        i = j;
    }
    nodes
}

/// Clip a node's pieces to `[from, to]` and accumulate into `out`
/// (nanosecond-exact).
fn add_pieces(out: &mut CauseBreakdown, node: &Node, from: u64, to: u64) {
    for &(s, e, cause) in &node.pieces {
        let cs = s.max(from);
        let ce = e.min(to);
        if ce > cs {
            out.add(cause, (ce - cs) as f64 * 1e-9);
        }
    }
}

/// Reconstruct the dependency DAG of a trace, attribute every nanosecond
/// of every stage track to a [`BubbleCause`], and extract the critical
/// path. Works on measured snapshots, parsed Chrome traces, and simulated
/// snapshots ([`crate::simtrace`]) alike.
pub fn analyze_trace(snap: &TraceSnapshot) -> CriticalPathReport {
    let wall_ns = snap
        .tracks
        .iter()
        .flat_map(|t| t.events.iter().map(|e| e.end_ns))
        .max()
        .unwrap_or(0);
    let wall_s = wall_ns as f64 * 1e-9;
    let num_stages = snap
        .tracks
        .iter()
        .filter_map(|t| t.stage)
        .max()
        .map(|s| s + 1)
        .unwrap_or(0);

    // Fault instants anywhere in the run mark surrounding gaps as
    // injection-caused rather than plain idle.
    let fault_instants: Vec<u64> = snap
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.is_instant() && matches!(e.kind, SpanKind::Fault | SpanKind::Stalled))
        .map(|e| e.start_ns)
        .collect();

    let mut per_stage: Vec<StageAttribution> = (0..num_stages)
        .map(|stage| StageAttribution {
            stage,
            ..StageAttribution::default()
        })
        .collect();
    let mut all_nodes: Vec<Node> = Vec::new();
    let mut tracks_of_node: Vec<Vec<usize>> = vec![Vec::new(); snap.tracks.len()];

    for (ti, track) in snap.tracks.iter().enumerate() {
        let Some(stage) = track.stage else { continue };
        let nodes = build_nodes(stage, track);
        let st = &mut per_stage[stage];
        st.tracks += 1;
        st.minibatches += track
            .events
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Bwd { .. }) && !e.is_instant())
            .count() as u64;
        // Exact per-track accounting: [0, first) fill, pieces, interior
        // gaps, (last, wall] drain.
        let mut cursor = 0u64;
        for node in &nodes {
            if node.start_ns > cursor {
                let gap_cause = if fault_instants
                    .iter()
                    .any(|&f| f >= cursor && f <= node.start_ns)
                {
                    BubbleCause::Injection
                } else if cursor == 0 {
                    BubbleCause::FillDrain
                } else {
                    BubbleCause::Idle
                };
                st.breakdown
                    .add(gap_cause, (node.start_ns - cursor) as f64 * 1e-9);
            }
            add_pieces(&mut st.breakdown, node, node.start_ns, node.end_ns);
            cursor = cursor.max(node.end_ns);
        }
        if wall_ns > cursor {
            st.breakdown
                .add(BubbleCause::FillDrain, (wall_ns - cursor) as f64 * 1e-9);
        }
        let base = all_nodes.len();
        tracks_of_node[ti] = (base..base + nodes.len()).collect();
        all_nodes.extend(nodes);
    }

    for st in &mut per_stage {
        if st.minibatches > 0 && st.tracks > 0 {
            let b = &st.breakdown;
            let service = b.compute_s
                + b.backpressure_s
                + b.recompute_s
                + b.optimizer_step_s
                + b.checkpoint_s;
            st.service_per_mb_s = service / st.minibatches as f64 / st.tracks as f64;
        }
    }

    // Producer lookup: (stage, mb) → node ids of its Fwd / Bwd spans.
    let mut by_fwd: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
    let mut by_bwd: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
    for (id, n) in all_nodes.iter().enumerate() {
        match n.kind {
            SpanKind::Fwd { mb } => by_fwd.entry((n.stage, mb)).or_default().push(id),
            SpanKind::Bwd { mb } => by_bwd.entry((n.stage, mb)).or_default().push(id),
            _ => {}
        }
    }
    let last_stage = num_stages.saturating_sub(1);
    // Node id → its same-track predecessor.
    let mut prev_on_track: HashMap<usize, usize> = HashMap::new();
    for ids in &tracks_of_node {
        for w in ids.windows(2) {
            prev_on_track.insert(w[1], w[0]);
        }
    }

    let mut critical_path: Vec<CpContribution> = (0..num_stages)
        .map(|stage| CpContribution {
            stage,
            ..CpContribution::default()
        })
        .collect();
    let mut cp_nodes = 0usize;

    if let Some(start) = (0..all_nodes.len()).max_by_key(|&i| (all_nodes[i].end_ns, i)) {
        let mut visited: HashSet<usize> = HashSet::new();
        let mut cur = start;
        let mut steps = 0usize;
        loop {
            visited.insert(cur);
            cp_nodes += 1;
            steps += 1;
            let node = &all_nodes[cur];
            // Binding predecessor: whoever released this span last — the
            // previous span on the same worker, or the cross-stage data
            // producer (Fwd feeds the next stage's Fwd; Bwd feeds the
            // previous stage's Bwd; the last stage's Bwd follows its own
            // Fwd).
            let producer = match node.kind {
                SpanKind::Fwd { mb } if node.stage > 0 => by_fwd.get(&(node.stage - 1, mb)),
                SpanKind::Bwd { mb } if node.stage < last_stage => {
                    by_bwd.get(&(node.stage + 1, mb))
                }
                SpanKind::Bwd { mb } => by_fwd.get(&(node.stage, mb)),
                _ => None,
            }
            .into_iter()
            .flatten()
            .copied()
            .filter(|&id| all_nodes[id].end_ns <= node.end_ns && !visited.contains(&id))
            .max_by_key(|&id| all_nodes[id].end_ns);
            let same_track = prev_on_track
                .get(&cur)
                .copied()
                .filter(|id| !visited.contains(id));
            let pred = [producer, same_track]
                .into_iter()
                .flatten()
                .max_by_key(|&id| all_nodes[id].end_ns);

            let from = pred.map(|id| all_nodes[id].end_ns).unwrap_or(0);
            let cp = &mut critical_path[node.stage];
            // Slack before the span started: fill at the chain's origin,
            // scheduler idle elsewhere (injection if a fault sits inside).
            if node.start_ns > from {
                let cause = if fault_instants
                    .iter()
                    .any(|&f| f >= from && f <= node.start_ns)
                {
                    BubbleCause::Injection
                } else if pred.is_none() {
                    BubbleCause::FillDrain
                } else {
                    BubbleCause::Idle
                };
                cp.seconds += (node.start_ns - from) as f64 * 1e-9;
                cp.breakdown
                    .add(cause, (node.start_ns - from) as f64 * 1e-9);
            }
            let seg_from = from.max(node.start_ns).min(node.end_ns);
            cp.seconds += (node.end_ns - seg_from) as f64 * 1e-9;
            add_pieces(&mut cp.breakdown, node, seg_from, node.end_ns);

            match pred {
                Some(p) if steps <= all_nodes.len() => cur = p,
                _ => break,
            }
        }
    }

    CriticalPathReport {
        wall_s,
        minibatches: per_stage.iter().map(|s| s.minibatches).max().unwrap_or(0),
        per_minibatch_s: measured_per_minibatch_s(snap),
        per_stage,
        critical_path,
        cp_nodes,
    }
}

/// Amdahl-style what-if: shrink `stage`'s per-minibatch service time by
/// `speedup_frac` and predict the steady-state per-minibatch time. The
/// pipeline's steady-state rate is set by its slowest stage, so the
/// prediction moves only by however much the *maximum* service time
/// moves — speeding up a non-bottleneck stage predicts (correctly) no
/// gain.
pub fn what_if(report: &CriticalPathReport, stage: usize, speedup_frac: f64) -> WhatIf {
    let services: Vec<f64> = report
        .per_stage
        .iter()
        .map(|s| s.service_per_mb_s)
        .collect();
    let old_max = services.iter().copied().fold(0.0f64, f64::max);
    // Steady state can't outrun the bottleneck stage's service time, and
    // short traces have no reliable slope at all — the service bound is
    // the floor of the baseline.
    let baseline = report.per_minibatch_s.max(old_max);
    let mut adjusted = services;
    if let Some(s) = adjusted.get_mut(stage) {
        *s *= 1.0 - speedup_frac;
    }
    let new_max = adjusted.iter().copied().fold(0.0f64, f64::max);
    let predicted = (baseline - (old_max - new_max)).max(new_max).max(0.0);
    WhatIf {
        stage,
        speedup_frac,
        baseline_per_mb_s: baseline,
        predicted_per_mb_s: predicted,
        predicted_gain_frac: if baseline > 0.0 {
            1.0 - predicted / baseline
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    const MS: u64 = 1_000_000;

    fn span(kind: SpanKind, start_ms: u64, end_ms: u64) -> Event {
        Event::span(kind, start_ms * MS, end_ms * MS)
    }

    /// Hand-built 3-stage trace with known bubble causes. Stage 1 is a
    /// straggler: every forward carries a 6 ms injected send delay
    /// (send_wait nested in fwd), keeping stage 1 continuously busy
    /// (2 ms compute + 6 ms delay per forward) while stage 2 starves
    /// between minibatches and stage 0 idles awaiting gradients.
    ///
    /// Layout (ms), 4 minibatches, fwd/bwd 2 ms everywhere, wall 44:
    ///   stage0: fwd_k [2k, 2k+2]; bwd0 34-38 (recv_wait 34-36),
    ///           bwd_k [36+2k, 38+2k] for k≥1
    ///   stage1: fwd_k [2+8k, 10+8k] (send_wait [4+8k, 10+8k]),
    ///           bwd_k [34+2k, 36+2k]
    ///   stage2: fwd0 10-12, bwd0 12-14; for k≥1 fwd_k [6+8k, 12+8k]
    ///           (recv_wait [6+8k, 10+8k]), bwd_k [12+8k, 14+8k]
    fn straggler_snap() -> TraceSnapshot {
        use crate::recorder::TrackEvents;
        let mut s0 = vec![
            span(SpanKind::Bwd { mb: 0 }, 34, 38),
            span(SpanKind::RecvWait { mb: 0 }, 34, 36),
        ];
        let mut s1 = Vec::new();
        let mut s2 = vec![
            span(SpanKind::Fwd { mb: 0 }, 10, 12),
            span(SpanKind::Bwd { mb: 0 }, 12, 14),
        ];
        for k in 0..4u64 {
            s0.push(span(SpanKind::Fwd { mb: k }, 2 * k, 2 * k + 2));
            if k >= 1 {
                s0.push(span(SpanKind::Bwd { mb: k }, 36 + 2 * k, 38 + 2 * k));
                s2.push(span(SpanKind::Fwd { mb: k }, 6 + 8 * k, 12 + 8 * k));
                s2.push(span(SpanKind::RecvWait { mb: k }, 6 + 8 * k, 10 + 8 * k));
                s2.push(span(SpanKind::Bwd { mb: k }, 12 + 8 * k, 14 + 8 * k));
            }
            s1.push(span(SpanKind::Fwd { mb: k }, 2 + 8 * k, 10 + 8 * k));
            s1.push(span(SpanKind::SendWait { mb: k }, 4 + 8 * k, 10 + 8 * k));
            s1.push(span(SpanKind::Bwd { mb: k }, 34 + 2 * k, 36 + 2 * k));
        }
        for events in [&mut s0, &mut s1, &mut s2] {
            events.sort_by_key(|e| (e.start_ns, e.end_ns));
        }
        TraceSnapshot {
            tracks: vec![
                TrackEvents {
                    name: "stage0.replica0".into(),
                    stage: Some(0),
                    events: s0,
                    dropped: 0,
                },
                TrackEvents {
                    name: "stage1.replica0".into(),
                    stage: Some(1),
                    events: s1,
                    dropped: 0,
                },
                TrackEvents {
                    name: "stage2.replica0".into(),
                    stage: Some(2),
                    events: s2,
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn attribution_is_an_exact_partition_of_wall_clock() {
        let report = analyze_trace(&straggler_snap());
        assert!((report.wall_s - 0.044).abs() < 1e-12);
        for st in &report.per_stage {
            assert_eq!(st.tracks, 1);
            let total = st.breakdown.total_s();
            assert!(
                (total - report.wall_s).abs() < 1e-9,
                "stage {} attribution {total} != wall {}",
                st.stage,
                report.wall_s
            );
        }
        // And the critical path tiles wall clock exactly too.
        let cp_total: f64 = report.critical_path.iter().map(|c| c.seconds).sum();
        assert!((cp_total - report.wall_s).abs() < 1e-9, "cp {cp_total}");
        let cp_breakdown: f64 = report
            .critical_path
            .iter()
            .map(|c| c.breakdown.total_s())
            .sum();
        assert!((cp_breakdown - report.wall_s).abs() < 1e-9);
    }

    #[test]
    fn golden_causes_on_the_hand_built_trace() {
        let report = analyze_trace(&straggler_snap());
        let ms = 1e-3;
        // Stage 0: 8 ms fwd + 8 ms bwd compute, 2 ms nested recv_wait,
        // 26 ms interior idle (8→34), 0 fill/drain (its first span starts
        // at 0 and its last ends at wall).
        let s0 = &report.per_stage[0].breakdown;
        assert!((s0.compute_s - 16.0 * ms).abs() < 1e-9);
        assert!((s0.wait_upstream_s - 2.0 * ms).abs() < 1e-9);
        assert!((s0.idle_s - 26.0 * ms).abs() < 1e-9);
        assert!((s0.fill_drain_s - 0.0).abs() < 1e-9);
        // Stage 1 (the straggler): 4 × 6 ms injected send delay reads as
        // backpressure; compute is fwd(4×2)+bwd(4×2)=16 ms; 2 ms fill +
        // 2 ms drain; zero interior idle — it never stops working.
        let s1 = &report.per_stage[1].breakdown;
        assert!((s1.backpressure_s - 24.0 * ms).abs() < 1e-9);
        assert!((s1.compute_s - 16.0 * ms).abs() < 1e-9);
        assert!((s1.fill_drain_s - 4.0 * ms).abs() < 1e-9);
        assert!((s1.idle_s - 0.0).abs() < 1e-12);
        // Stage 2 (downstream of the straggler): starves 4 ms per
        // minibatch on upstream, plus 10 ms fill + 6 ms drain.
        let s2 = &report.per_stage[2].breakdown;
        assert_eq!(s2.top_bubble().unwrap().0, BubbleCause::FillDrain);
        assert!((s2.wait_upstream_s - 12.0 * ms).abs() < 1e-9);
        // Excluding fill/drain (warmup), wait_upstream dominates stage 2's
        // interior bubbles.
        assert!(s2.wait_upstream_s >= s2.idle_s.max(s2.backpressure_s));
        // The straggler stage owns the largest critical-path share.
        assert_eq!(report.bottleneck_stage(), Some(1));
        let ranked = report.ranked();
        assert_eq!(ranked[0].stage, 1);
        assert!(ranked[0].seconds > ranked[1].seconds);
        // Stage 1's critical-path time is dominated by its own
        // backpressure + compute, i.e. the injected delay is on the path.
        let cp1 = &report.critical_path[1];
        assert!(cp1.breakdown.backpressure_s > 0.0);
        // Services: stage 1 is the bottleneck service too.
        let svc: Vec<f64> = report
            .per_stage
            .iter()
            .map(|s| s.service_per_mb_s)
            .collect();
        assert!(svc[1] > svc[0] && svc[1] > svc[2], "{svc:?}");
    }

    #[test]
    fn what_if_scales_only_the_bottleneck() {
        let report = analyze_trace(&straggler_snap());
        // Removing stage 1's delay (6 of 10 ms service → 60% faster).
        let w = what_if(&report, 1, 6.0 / 10.0);
        assert!(w.predicted_per_mb_s < w.baseline_per_mb_s);
        assert!(w.predicted_gain_frac > 0.0);
        // Speeding up a non-bottleneck stage predicts no gain.
        let w0 = what_if(&report, 0, 0.5);
        assert!(w0.predicted_gain_frac.abs() < 1e-9);
    }

    #[test]
    fn two_bw_barrier_reclassifies_sparse_sync() {
        use crate::recorder::TrackEvents;
        // 4 backwards, 1 optimizer step → 2BW cadence: grad_sync reads as
        // a group barrier.
        let snap = TraceSnapshot {
            tracks: vec![TrackEvents {
                name: "stage0.replica0".into(),
                stage: Some(0),
                events: vec![
                    span(SpanKind::Bwd { mb: 0 }, 0, 4),
                    span(SpanKind::Bwd { mb: 1 }, 4, 8),
                    span(SpanKind::Bwd { mb: 2 }, 8, 12),
                    span(SpanKind::Bwd { mb: 3 }, 12, 20),
                    span(SpanKind::GradSync, 14, 18),
                    span(SpanKind::OptStep { mb: 3 }, 18, 20),
                ],
                dropped: 0,
            }],
        };
        let report = analyze_trace(&snap);
        let b = &report.per_stage[0].breakdown;
        assert!((b.two_bw_barrier_s - 4e-3).abs() < 1e-9);
        assert!((b.grad_sync_s - 0.0).abs() < 1e-12);
        assert!((b.optimizer_step_s - 2e-3).abs() < 1e-9);
        // Dense opt-step cadence keeps GradSync as GradSync.
        let snap2 = TraceSnapshot {
            tracks: vec![TrackEvents {
                name: "stage0.replica0".into(),
                stage: Some(0),
                events: vec![
                    span(SpanKind::Bwd { mb: 0 }, 0, 8),
                    span(SpanKind::GradSync, 2, 4),
                    span(SpanKind::OptStep { mb: 0 }, 6, 8),
                ],
                dropped: 0,
            }],
        };
        let b2 = &analyze_trace(&snap2).per_stage[0].breakdown;
        assert!((b2.grad_sync_s - 2e-3).abs() < 1e-9);
        assert!((b2.two_bw_barrier_s - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let report = analyze_trace(&TraceSnapshot::default());
        assert_eq!(report.wall_s, 0.0);
        assert!(report.per_stage.is_empty());
        assert_eq!(report.bottleneck_stage(), None);
        let w = what_if(&report, 0, 0.5);
        assert_eq!(w.predicted_gain_frac, 0.0);
    }
}
