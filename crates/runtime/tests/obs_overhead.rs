//! Tracing must be cheap enough to leave on: an instrumented run may cost
//! at most ~5% wall-clock over an uninstrumented one (plus a small
//! absolute slack to absorb scheduler noise on loaded CI machines).

use pipedream_core::PipelineConfig;
use pipedream_runtime::trainer::train_pipeline;
use pipedream_runtime::{LrSchedule, OptimKind, Semantics, TrainOpts};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Tanh};
use pipedream_tensor::Sequential;

fn mlp(seed: u64) -> Sequential {
    let mut r = rng(seed);
    Sequential::new("mlp")
        .push(Linear::new(8, 48, &mut r))
        .push(Tanh::new())
        .push(Linear::new(48, 48, &mut r))
        .push(Tanh::new())
        .push(Linear::new(48, 48, &mut r))
        .push(Tanh::new())
        .push(Linear::new(48, 48, &mut r))
        .push(Linear::new(48, 4, &mut r))
}

fn wall_time(session: Option<std::sync::Arc<pipedream_obs::TraceSession>>) -> f64 {
    let data = blobs(512, 8, 4, 0.6, 7);
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let opts = TrainOpts {
        epochs: 3,
        batch: 16,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs: session,
        ..TrainOpts::default()
    };
    let (_, report) = train_pipeline(mlp(3), &config, &data, &opts);
    report.wall_time_s
}

#[test]
fn tracing_overhead_under_five_percent() {
    // Min-of-3 on each side filters out one-off scheduler hiccups; the
    // absolute slack term dominates at these tiny wall times, so the 5%
    // multiplier is what matters as runs get longer.
    let disabled = (0..3)
        .map(|_| wall_time(None))
        .fold(f64::INFINITY, f64::min);
    let enabled = (0..3)
        .map(|_| wall_time(Some(pipedream_obs::TraceSession::new())))
        .fold(f64::INFINITY, f64::min);
    assert!(
        enabled <= disabled * 1.05 + 0.12,
        "tracing overhead too high: enabled {enabled:.3}s vs disabled {disabled:.3}s"
    );
}

/// Wall time of an instrumented run with a concurrent `--watch`-style
/// sampler draining the rings every few milliseconds.
fn wall_time_watched() -> f64 {
    let session = pipedream_obs::TraceSession::new();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let watcher = {
        let session = session.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut profiler = pipedream_obs::LiveProfiler::new(session);
            let mut samples = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                profiler.sample();
                samples += 1;
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            (samples, profiler.sample())
        })
    };
    let wall = wall_time(Some(session));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (samples, last) = watcher.join().expect("watcher thread");
    // The watcher must have actually been sampling the run, not idling.
    assert!(samples > 0, "watcher never sampled");
    assert!(
        last.minibatches_total > 0,
        "watcher saw no minibatches across the whole run"
    );
    wall
}

#[test]
fn watch_snapshots_keep_overhead_under_five_percent() {
    // The live profiler drains full ring snapshots concurrently with the
    // hot path; the seqlock rings make that read-side work invisible to
    // the workers, so the same <5% bound must hold with --watch on.
    let disabled = (0..3)
        .map(|_| wall_time(None))
        .fold(f64::INFINITY, f64::min);
    let watched = (0..3)
        .map(|_| wall_time_watched())
        .fold(f64::INFINITY, f64::min);
    assert!(
        watched <= disabled * 1.05 + 0.12,
        "watch-mode overhead too high: watched {watched:.3}s vs disabled {disabled:.3}s"
    );
}

/// The trainer folds the buffer pool's hit/miss delta into the metrics
/// registry, so a healthy run's Prometheus dump carries nonzero
/// `tensor_pool_hits_total` (reuse happening) alongside a bounded
/// `tensor_pool_misses_total` (warm-up allocations only).
#[test]
fn pool_counters_land_in_metrics_registry() {
    let session = pipedream_obs::TraceSession::new();
    wall_time(Some(session.clone()));
    let metrics = session.metrics();
    let hits = metrics.counter("tensor_pool_hits_total").get();
    let misses = metrics.counter("tensor_pool_misses_total").get();
    assert!(hits > 0, "training never reused a pooled buffer");
    assert!(
        hits > misses,
        "pool mostly missing: {hits} hits vs {misses} misses"
    );
    let dump = metrics.render_prometheus();
    assert!(
        dump.contains("tensor_pool_hits_total") && dump.contains("tensor_pool_misses_total"),
        "pool counters missing from Prometheus dump:\n{dump}"
    );
}

#[test]
fn session_captures_without_perturbing_results() {
    // The instrumented run must be numerically identical to the bare one —
    // recording is pure observation.
    let data = blobs(256, 8, 4, 0.6, 7);
    let config = PipelineConfig::straight(8, &[1, 3, 5]);
    let mk = |obs| TrainOpts {
        epochs: 2,
        batch: 16,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        depth: None,
        trace: false,
        obs,
        ..TrainOpts::default()
    };
    let session = pipedream_obs::TraceSession::new();
    let (_, bare) = train_pipeline(mlp(11), &config, &data, &mk(None));
    let (_, traced) = train_pipeline(mlp(11), &config, &data, &mk(Some(session.clone())));
    for (a, b) in bare.per_epoch.iter().zip(traced.per_epoch.iter()) {
        assert_eq!(a.loss, b.loss, "epoch {}", a.epoch);
    }
    // And the session actually saw the run: every worker track has
    // forward and backward spans.
    let snap = session.snapshot();
    assert_eq!(snap.tracks.len(), 4);
    for t in &snap.tracks {
        assert!(
            t.events
                .iter()
                .any(|e| matches!(e.kind, pipedream_obs::SpanKind::Fwd { .. })),
            "track {} has no forward spans",
            t.name
        );
        assert!(
            t.events
                .iter()
                .any(|e| matches!(e.kind, pipedream_obs::SpanKind::Bwd { .. })),
            "track {} has no backward spans",
            t.name
        );
        assert_eq!(t.dropped, 0, "ring overflowed on track {}", t.name);
    }
}
