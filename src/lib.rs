//! # pipedream-rs
//!
//! A Rust reproduction of **"PipeDream: Generalized Pipeline Parallelism for
//! DNN Training"** (SOSP 2019). This facade crate re-exports the workspace
//! crates under one roof:
//!
//! * [`core`] ([`pipedream_core`]) — the paper's contribution: the
//!   partitioning optimizer (§3.1), the 1F1B / 1F1B-RR schedules (§3.2), and
//!   weight stashing / vertical sync (§3.3);
//! * [`hw`] — hierarchical hardware topologies and cost models (Table 2);
//! * [`model`] — per-layer DNN profiles and the model zoo (VGG-16, ResNet-50,
//!   AlexNet, GNMT-8/16, AWD-LM, S2VT);
//! * [`sim`] — a discrete-event cluster simulator executing the schedules;
//! * [`tensor`] — a from-scratch tensor/layer library for real training;
//! * [`runtime`] — a multi-threaded pipeline-parallel training runtime;
//! * [`convergence`] — statistical-efficiency (accuracy-vs-epoch) models;
//! * [`obs`] — tracing + metrics for measured runs: per-worker event rings,
//!   Chrome-trace export, and measured-vs-planned validation;
//! * [`ft`] — fault injection, the recovery supervisor, and stragglers (§4);
//! * [`autopilot`] — the self-optimizing control plane: applies live replans
//!   with checkpointed repartition and verified rollback.
//!
//! ## Quickstart
//!
//! ```
//! use pipedream::prelude::*;
//!
//! // Plan VGG-16 on 4 Cluster-A servers (16 V100s) and simulate it.
//! let profile = pipedream::model::zoo::vgg16();
//! let topo = ClusterPreset::A.with_servers(4);
//! let plan = Planner::new(&profile, &topo).try_plan().unwrap();
//! println!("config {}", plan.config);
//! ```

pub use pipedream_autopilot as autopilot;
pub use pipedream_convergence as convergence;
pub use pipedream_core as core;
pub use pipedream_ft as ft;
pub use pipedream_hw as hw;
pub use pipedream_model as model;
pub use pipedream_obs as obs;
pub use pipedream_runtime as runtime;
pub use pipedream_sim as sim;
pub use pipedream_tensor as tensor;

/// Commonly used items across the workspace.
pub mod prelude {
    pub use pipedream_core::planner::Planner;
    pub use pipedream_core::schedule::{Op, Schedule};
    pub use pipedream_core::stash::WeightStash;
    pub use pipedream_hw::{ClusterPreset, Device, Precision, ServerKind, Topology};
    pub use pipedream_model::{LayerProfile, ModelProfile};
}
