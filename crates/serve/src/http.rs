//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! Just enough of RFC 7230 for a JSON planning service and its bench
//! clients: request-line + headers + `Content-Length` bodies, keep-alive
//! by default, no chunked encoding, no TLS. Hand-rolled because the
//! environment is offline — the vendored stand-ins cover serde but there
//! is no HTTP crate, and the protocol subset needed here is ~200 lines.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a hand-written profile is ~10 KB; 4 MB
/// leaves room for generated ones while bounding a misbehaving client).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Largest accepted header section.
const MAX_HEADER_BYTES: usize = 16 << 10;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased).
    pub method: String,
    /// The path component, e.g. `/plan` (query strings are not split off;
    /// the service's paths don't use them).
    pub path: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, sized by `Content-Length` (empty if absent).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly before a request line.
    Closed,
    /// The socket read timed out (used by workers to poll for shutdown).
    TimedOut,
    /// The bytes on the wire were not a well-formed request.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge,
    /// Any other socket error.
    Io(std::io::Error),
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ReadError::TimedOut,
            std::io::ErrorKind::UnexpectedEof => ReadError::Closed,
            _ => ReadError::Io(e),
        }
    }
}

/// Read one request from `reader` (a buffered wrapper of the stream).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    let mut header_bytes = 0;
    if reader.read_line(&mut line)? == 0 {
        return Err(ReadError::Closed);
    }
    header_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line missing path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut headers = Vec::new();
    loop {
        let mut hl = String::new();
        if reader.read_line(&mut hl)? == 0 {
            return Err(ReadError::Malformed("EOF inside headers".into()));
        }
        header_bytes += hl.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ReadError::Malformed("header section too large".into()));
        }
        let hl = hl.trim_end();
        if hl.is_empty() {
            break;
        }
        let (name, value) = hl
            .split_once(':')
            .ok_or_else(|| ReadError::Malformed(format!("bad header line {hl:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad Content-Length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Reason-phrases for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize a response to its wire bytes.
pub fn format_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 128);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            status,
            status_text(status),
            content_type,
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// Write a response; returns `false` if the socket rejected it (peer
/// gone), in which case the connection should be dropped.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> bool {
    stream
        .write_all(&format_response(status, content_type, body, keep_alive))
        .and_then(|_| stream.flush())
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Result<Request, ReadError> {
        // Push the raw bytes through a real socket pair so the reader
        // sees genuine TcpStream behaviour.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        drop(client); // EOF after the payload
        let (server_side, _) = listener.accept().unwrap();
        read_request(&mut BufReader::new(server_side))
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            "POST /plan HTTP/1.1\r\nContent-Length: 7\r\nX-Deadline-Ms: 250\r\n\r\n{\"a\":1}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/plan");
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body_and_close() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            roundtrip("not http at all\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip("POST /plan HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(ReadError::TooLarge)
        ));
        assert!(matches!(roundtrip(""), Err(ReadError::Closed)));
    }

    #[test]
    fn response_wire_format() {
        let bytes = format_response(200, "application/json", b"{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
