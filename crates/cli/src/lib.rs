//! Library backing the `pipedream` command-line tool.
//!
//! All command logic lives here (parsing, dispatch, rendering) so it can be
//! unit-tested; `main.rs` is a thin shim. Subcommands:
//!
//! * `plan` — run the partitioning optimizer for a zoo model (or a model
//!   profile from JSON) on a preset cluster (or a topology from JSON);
//! * `simulate` — execute a configuration's 1F1B-RR schedule on the
//!   discrete-event simulator, with optional ASCII timeline;
//! * `dp` — the data-parallel baseline: iteration time and stall fraction;
//! * `train` — really train a small model pipeline-parallel on a synthetic
//!   task with the chosen semantics (add `--watch` for live status lines);
//! * `serve` — the planning daemon: `POST /plan`, `/simulate`,
//!   `/validate` over HTTP/1.1 + JSON with a sharded plan cache,
//!   `/metrics` (Prometheus) and `/healthz`;
//! * `top` — live per-stage dashboard over a demo training run;
//! * `inspect` — per-layer profile tables, including measured ones
//!   replayed offline from a recorded Chrome trace (`--from-trace`);
//! * `analyze` — critical-path analysis of a recorded trace: ranked
//!   bottleneck report with typed bubble attribution, an Amdahl-style
//!   what-if estimator, and a stage-by-stage diff against a simulated
//!   trace (`simulate --trace`).

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Run a parsed command, returning the rendered output.
pub fn run(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Plan(a) => commands::plan(a),
        Command::Simulate(a) => commands::simulate(a),
        Command::Dp(a) => commands::dp(a),
        Command::Train(a) => commands::train(a),
        Command::Serve(a) => commands::serve(a),
        Command::Export(a) => commands::export(a),
        Command::Inspect(a) => commands::inspect(a),
        Command::Analyze(a) => commands::analyze(a),
        Command::Top(a) => commands::top(a),
        Command::Help => Ok(args::USAGE.to_string()),
    }
}
