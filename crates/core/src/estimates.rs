//! Communication-volume and memory-footprint estimators
//! (paper Figures 16 and 17, §3.3 "Memory Overhead").

use crate::config::PipelineConfig;
use crate::stash::ScheduleKind;
use pipedream_model::LayerCosts;
use serde::{Deserialize, Serialize};

/// Total bytes moved across the cluster per *training sample* under
/// data-parallel BSP with `workers` workers: every iteration each worker
/// sends and receives `(m−1)/m · Σ|w_l|`, amortised over `m · G` samples.
pub fn dp_bytes_per_sample(costs: &LayerCosts, workers: usize) -> f64 {
    if workers <= 1 {
        return 0.0;
    }
    let m = workers as f64;
    let w: u64 = costs.weight_bytes_all();
    // Total traffic per iteration: m workers × 2(m−1)/m·w = 2(m−1)·w,
    // over m·G samples.
    2.0 * (m - 1.0) * w as f64 / (m * costs.batch as f64)
}

/// Total bytes moved per training sample under a pipeline-parallel
/// configuration: activation + gradient traffic across each stage boundary,
/// plus gradient all_reduce traffic for replicated stages.
pub fn pp_bytes_per_sample(costs: &LayerCosts, config: &PipelineConfig) -> f64 {
    let g = costs.batch as f64;
    let mut bytes = 0.0f64;
    // Every sample crosses each boundary twice (activations forward,
    // gradients backward).
    for stage in &config.stages()[..config.num_stages() - 1] {
        bytes += 2.0 * costs.activation_bytes(stage.last_layer) as f64 / g;
    }
    // Replicated stages synchronize weight gradients. Each replica runs a
    // backward pass once every r minibatches, so a full r-way all_reduce
    // (total traffic 2(r−1)·w) is amortised over r·G samples.
    for stage in config.stages() {
        let r = stage.replicas as f64;
        if stage.replicas > 1 {
            let w = costs.weight_bytes(stage.first_layer, stage.last_layer) as f64;
            bytes += 2.0 * (r - 1.0) * w / (r * g);
        }
    }
    bytes
}

/// Fractional reduction in communication of `config` relative to DP over
/// the same worker count (the paper quotes ">85% reduction for VGG-16,
/// AWD LM").
pub fn communication_reduction(costs: &LayerCosts, config: &PipelineConfig) -> f64 {
    let dp = dp_bytes_per_sample(costs, config.total_workers());
    if dp == 0.0 {
        return 0.0;
    }
    1.0 - pp_bytes_per_sample(costs, config) / dp
}

/// Estimated peak memory of one worker of each stage, in bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Stage index.
    pub stage: usize,
    /// Weight bytes × stashed versions.
    pub weight_bytes: u64,
    /// Activation-stash bytes across in-flight minibatches.
    pub activation_bytes: u64,
}

impl StageMemory {
    /// Total estimated footprint.
    pub fn total(&self) -> u64 {
        self.weight_bytes + self.activation_bytes
    }
}

/// Number of minibatches in flight at `stage` under 1F1B — stage `s` of an
/// `n`-stage pipeline stashes state for
/// `⌈ (workers at stage s and later) / replicas_s ⌉` minibatches (which
/// reduces to `n − s` for straight pipelines and 1 for data parallelism).
pub fn in_flight_at_stage(config: &PipelineConfig, stage: usize) -> usize {
    let downstream: usize = config.stages()[stage..].iter().map(|s| s.replicas).sum();
    downstream.div_ceil(config.stages()[stage].replicas)
}

/// Per-stage memory estimate for a pipeline configuration (per worker).
///
/// Each in-flight minibatch holds one weight version and one activation
/// stash of every layer in the stage (§3.3): with `n` in flight the stage
/// stores `n` weight versions and `n` activation sets.
pub fn memory_footprint(costs: &LayerCosts, config: &PipelineConfig) -> Vec<StageMemory> {
    memory_footprint_for(costs, config, ScheduleKind::Vanilla1F1B)
}

/// The bytes a stage's *input* activations occupy per minibatch — what a
/// recomputing stage must retain for every in-flight minibatch so it can
/// re-run its forward pass. Stage 0's input is the training data itself;
/// its size is approximated by the first layer's activation volume (the
/// profile does not record raw input bytes, and for the huge-model regime
/// this term is negligible against weights).
fn stage_input_bytes(costs: &LayerCosts, first_layer: usize) -> u64 {
    if first_layer == 0 {
        costs.activation_bytes(0)
    } else {
        costs.activation_bytes(first_layer - 1)
    }
}

/// Schedule-aware per-stage memory estimate (per worker).
///
/// The vanilla model is `versions × weights + versions × activations` with
/// `versions =` the stage's in-flight depth. The memory-efficient variants
/// shrink each term independently:
///
/// * **2BW** caps weight versions at `min(2, in_flight)` — double-buffered
///   group updates never hold more than two generations;
/// * **recompute** replaces the per-minibatch activation stash with the
///   stage *input* per in-flight minibatch plus **one** full activation
///   set as the recompute workspace (the stage re-runs its forward for a
///   single minibatch at a time, right before that minibatch's backward).
pub fn memory_footprint_for(
    costs: &LayerCosts,
    config: &PipelineConfig,
    kind: ScheduleKind,
) -> Vec<StageMemory> {
    config
        .stages()
        .iter()
        .enumerate()
        .map(|(si, s)| {
            let in_flight = in_flight_at_stage(config, si) as u64;
            let versions = if kind.uses_two_bw() {
                in_flight.min(2)
            } else {
                in_flight
            };
            let weights = costs.weight_bytes(s.first_layer, s.last_layer);
            let acts: u64 = (s.first_layer..=s.last_layer)
                .map(|l| costs.activation_bytes(l))
                .sum();
            let activation_bytes = if kind.uses_recompute() {
                in_flight * stage_input_bytes(costs, s.first_layer) + acts
            } else {
                acts * in_flight
            };
            StageMemory {
                stage: si,
                weight_bytes: weights * versions,
                activation_bytes,
            }
        })
        .collect()
}

/// Memory footprint of one data-parallel worker: one weight copy (plus one
/// gradient buffer) and one activation set for the single in-flight
/// minibatch.
pub fn dp_memory_footprint(costs: &LayerCosts) -> StageMemory {
    let n = costs.num_layers();
    StageMemory {
        stage: 0,
        weight_bytes: 2 * costs.weight_bytes(0, n - 1),
        activation_bytes: (0..n).map(|l| costs.activation_bytes(l)).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipedream_hw::{Device, Precision};
    use pipedream_model::zoo;

    fn vgg_costs() -> LayerCosts {
        zoo::vgg16().costs(&Device::v100(), 64, Precision::Fp32)
    }

    #[test]
    fn dp_bytes_grow_with_workers() {
        let c = vgg_costs();
        let b4 = dp_bytes_per_sample(&c, 4);
        let b16 = dp_bytes_per_sample(&c, 16);
        assert!(b16 > b4);
        assert_eq!(dp_bytes_per_sample(&c, 1), 0.0);
    }

    #[test]
    fn vgg_pipeline_reduces_communication_over_85_percent() {
        // §3: ">85% reduction for VGG-16" with its best non-DP config.
        let c = vgg_costs();
        let config = PipelineConfig::from_counts(&[(13, 15), (3, 1)]);
        let red = communication_reduction(&c, &config);
        assert!(red > 0.85, "reduction {red}");
    }

    #[test]
    fn awd_lm_straight_pipeline_reduces_communication_88_percent() {
        // §5.2: straight config "reduces communication by 88% compared to
        // DP" on 4 workers.
        let m = zoo::awd_lm();
        let c = m.costs(&Device::v100(), 80, Precision::Fp32);
        let config = PipelineConfig::straight(m.num_layers(), &[1, 3, 5]);
        let red = communication_reduction(&c, &config);
        assert!(red > 0.70, "reduction {red}");
    }

    #[test]
    fn resnet_dp_communicates_less_than_pipeline() {
        // §5.5 / Figure 17: for ResNet-50, the best non-DP configuration
        // communicates *more* than DP — activations dominate weights.
        let m = zoo::resnet50();
        let c = m.costs(&Device::v100(), 128, Precision::Fp32);
        let config = PipelineConfig::straight(m.num_layers(), &[4, 8, 13]);
        assert!(communication_reduction(&c, &config) < 0.0);
    }

    #[test]
    fn in_flight_matches_straight_pipeline_rule() {
        let c = PipelineConfig::straight(8, &[1, 3, 5]);
        assert_eq!(in_flight_at_stage(&c, 0), 4);
        assert_eq!(in_flight_at_stage(&c, 1), 3);
        assert_eq!(in_flight_at_stage(&c, 2), 2);
        assert_eq!(in_flight_at_stage(&c, 3), 1);
        let dp = PipelineConfig::data_parallel(8, 4);
        assert_eq!(in_flight_at_stage(&dp, 0), 1);
    }

    #[test]
    fn pipeline_worst_stage_memory_on_par_with_dp() {
        // §3.3: "PipeDream's peak per-worker memory usage is on par with
        // data parallelism."
        let c = vgg_costs();
        let config = PipelineConfig::straight(16, &[3, 7, 11]);
        let per_stage = memory_footprint(&c, &config);
        let peak = per_stage.iter().map(|s| s.total()).max().unwrap();
        let dp = dp_memory_footprint(&c).total();
        assert!(
            peak <= dp * 2,
            "pipeline peak {peak} should be on par with DP {dp}"
        );
    }

    #[test]
    fn memory_footprint_has_one_entry_per_stage() {
        let c = vgg_costs();
        let config = PipelineConfig::from_counts(&[(13, 2), (2, 1), (1, 1)]);
        let mem = memory_footprint(&c, &config);
        assert_eq!(mem.len(), 3);
        assert!(mem.iter().all(|m| m.total() > 0));
    }

    #[test]
    fn vanilla_footprint_is_the_default_kind() {
        let c = vgg_costs();
        let config = PipelineConfig::straight(16, &[3, 7, 11]);
        assert_eq!(
            memory_footprint(&c, &config),
            memory_footprint_for(&c, &config, ScheduleKind::Vanilla1F1B)
        );
    }

    #[test]
    fn two_bw_caps_weight_versions_at_two() {
        let c = vgg_costs();
        let config = PipelineConfig::straight(16, &[3, 7, 11]);
        let vanilla = memory_footprint_for(&c, &config, ScheduleKind::Vanilla1F1B);
        let two_bw = memory_footprint_for(&c, &config, ScheduleKind::TwoBW);
        for (si, (v, t)) in vanilla.iter().zip(&two_bw).enumerate() {
            let in_flight = in_flight_at_stage(&config, si) as u64;
            let one_version = v.weight_bytes / in_flight;
            assert_eq!(t.weight_bytes, one_version * in_flight.min(2));
            // Activations untouched by 2BW alone.
            assert_eq!(t.activation_bytes, v.activation_bytes);
        }
        // The input stage of a 4-deep pipeline halves its weight memory.
        assert!(two_bw[0].weight_bytes * 2 == vanilla[0].weight_bytes);
    }

    #[test]
    fn recompute_shrinks_activation_stash_to_o1() {
        // An activation-heavy model: recompute keeps 1 full activation set
        // plus in-flight stage inputs instead of in-flight full sets.
        let m = zoo::uniform(8, 1e9, 10_000_000, 1_000);
        let c = m.costs(&Device::v100(), 32, Precision::Fp32);
        let config = PipelineConfig::straight(8, &[1, 3, 5]);
        let vanilla = memory_footprint_for(&c, &config, ScheduleKind::Vanilla1F1B);
        let rec = memory_footprint_for(&c, &config, ScheduleKind::Recompute);
        // Stage 0: 4 in flight, 2 layers. Vanilla stashes 4×2 activation
        // sets; recompute keeps 4 inputs + 2 layers of workspace.
        let per_layer = c.activation_bytes(0);
        assert_eq!(vanilla[0].activation_bytes, 4 * 2 * per_layer);
        assert_eq!(rec[0].activation_bytes, 4 * per_layer + 2 * per_layer);
        // Weight term is untouched by recompute alone.
        assert_eq!(rec[0].weight_bytes, vanilla[0].weight_bytes);
        assert!(rec[0].total() < vanilla[0].total());
    }

    #[test]
    fn combined_kind_takes_both_reductions() {
        let c = vgg_costs();
        let config = PipelineConfig::straight(16, &[3, 7, 11]);
        let both = memory_footprint_for(&c, &config, ScheduleKind::TwoBWRecompute);
        let two_bw = memory_footprint_for(&c, &config, ScheduleKind::TwoBW);
        let rec = memory_footprint_for(&c, &config, ScheduleKind::Recompute);
        for ((b, t), r) in both.iter().zip(&two_bw).zip(&rec) {
            assert_eq!(b.weight_bytes, t.weight_bytes);
            assert_eq!(b.activation_bytes, r.activation_bytes);
            // Elementwise, combined never exceeds recompute alone (same
            // activation term, fewer weight versions). Against 2BW alone
            // the tail stage can gain the stage-input pin, so only the
            // input stage — where recompute pays off — is compared.
            assert!(b.total() <= r.total());
        }
        assert!(both[0].total() < two_bw[0].total());
        let peak = |f: &[StageMemory]| f.iter().map(|s| s.total()).max().unwrap();
        assert!(peak(&both) <= peak(&rec));
    }
}
