//! Platform diversity (paper §2.3): what happens when one worker is slower
//! than the rest, and how speed-aware partitioning recovers the loss.
//!
//! ```text
//! cargo run --example heterogeneous
//! ```

use pipedream::core::schedule::Schedule;
use pipedream::core::{PipelineConfig, Planner};
use pipedream::hw::{Device, LinkModel, Precision, Topology};
use pipedream::model::zoo;
use pipedream::sim::PipelineSim;

fn main() {
    // A 16-layer uniform model on 4 workers, one of which runs at 50%.
    let profile = zoo::uniform(16, 2e9, 50_000, 100_000);
    let topo = Topology::flat(
        Device::v100(),
        4,
        LinkModel::from_gbytes(10.0, 1e-6),
        "hetero",
    );
    let costs = profile.costs(&topo.device, profile.default_batch, Precision::Fp32);
    let speeds = vec![1.0, 0.5, 1.0, 1.0];
    let planner = Planner::new(&profile, &topo);

    println!("4-stage pipeline; worker 1 runs at half speed\n");

    // Naive: compute-balanced boundaries assume uniform workers.
    let naive = PipelineConfig::straight(16, &planner.balanced_boundaries(4).unwrap());
    let naive_r = PipelineSim::new(&costs, &topo, &Schedule::one_f_one_b(&naive, 48))
        .with_worker_speeds(speeds.clone())
        .run();
    println!(
        "uniform partitioning {:>12}: {:>5.0} samples/s (slow worker bottlenecks)",
        format!("({naive})"),
        naive_r.samples_per_sec
    );

    // Speed-aware: give the half-speed worker half the compute.
    let weighted = PipelineConfig::straight(16, &planner.weighted_boundaries(&speeds).unwrap());
    let weighted_r = PipelineSim::new(&costs, &topo, &Schedule::one_f_one_b(&weighted, 48))
        .with_worker_speeds(speeds.clone())
        .run();
    println!(
        "speed-aware partitioning {:>8}: {:>5.0} samples/s ({:.2}x recovery)",
        format!("({weighted})"),
        weighted_r.samples_per_sec,
        weighted_r.samples_per_sec / naive_r.samples_per_sec
    );

    // Reference: all workers at full speed.
    let full_r = PipelineSim::new(&costs, &topo, &Schedule::one_f_one_b(&naive, 48)).run();
    println!(
        "(all-workers-fast reference    : {:>5.0} samples/s)",
        full_r.samples_per_sec
    );

    println!("\nstage layer counts under the two partitionings:");
    for (label, cfg) in [("uniform", &naive), ("speed-aware", &weighted)] {
        let sizes: Vec<String> = cfg
            .stages()
            .iter()
            .map(|s| s.num_layers().to_string())
            .collect();
        println!("  {label:<12} {}", sizes.join(" + "));
    }
}
