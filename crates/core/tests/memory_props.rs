//! Property-based tests for the memory-constrained planner (§3.1 DP with
//! a per-worker memory budget) and the per-schedule memory model.

use pipedream_core::estimates::memory_footprint_for;
use pipedream_core::stash::ScheduleKind;
use pipedream_core::{config_fingerprint, PlanError, Planner};
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::zoo;
use proptest::prelude::*;

fn topo(workers: usize) -> Topology {
    Topology::flat(
        Device::v100(),
        workers,
        LinkModel::from_gbytes(10.0, 1e-6),
        "prop",
    )
}

fn arb_schedule() -> impl Strategy<Value = ScheduleKind> {
    (0usize..4).prop_map(|i| ScheduleKind::all()[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: whatever plan the constrained DP emits, every stage of
    /// it fits the budget under the planner's own memory model.
    #[test]
    fn plans_never_exceed_the_memory_limit(
        layers in 2usize..=10,
        workers in 1usize..=4,
        weight_params in 1_000u64..5_000_000,
        act_elems in 100u64..200_000,
        limit_mb in 1u64..4_000,
        kind in arb_schedule(),
    ) {
        let profile = zoo::uniform(layers, 1e9, act_elems, weight_params);
        let t = topo(workers);
        let limit = limit_mb * (1 << 20);
        let planner = Planner::with_options(&profile, &t, 16, Precision::Fp32)
            .with_schedule(kind)
            .with_memory_limit(limit);
        match planner.try_plan() {
            Ok(plan) => {
                for s in memory_footprint_for(planner.costs(), &plan.config, kind) {
                    prop_assert!(
                        s.total() <= limit,
                        "stage {} uses {} bytes over the {} limit ({kind})",
                        s.stage, s.total(), limit
                    );
                }
            }
            // A tight budget is allowed to be infeasible — but only with
            // the typed error, never a panic or a bogus plan.
            Err(PlanError::MemoryInfeasible { limit_bytes, schedule }) => {
                prop_assert_eq!(limit_bytes, limit);
                prop_assert_eq!(schedule, kind);
            }
            Err(e) => prop_assert!(false, "unexpected planner error: {e}"),
        }
    }

    /// Tightening the budget to nothing must surface as the typed
    /// `MemoryInfeasible` — weights alone always exceed a 1-byte budget.
    #[test]
    fn zero_budget_is_typed_infeasibility_not_a_panic(
        layers in 1usize..=8,
        workers in 1usize..=4,
        kind in arb_schedule(),
    ) {
        let profile = zoo::uniform(layers, 1e9, 1_000, 100_000);
        let t = topo(workers);
        let planner = Planner::new(&profile, &t)
            .with_schedule(kind)
            .with_memory_limit(1);
        let err = planner.try_plan().expect_err("1 byte can hold no stage");
        prop_assert!(
            matches!(err, PlanError::MemoryInfeasible { limit_bytes: 1, .. }),
            "wrong error under an impossible budget: {err}"
        );
        // And the error's Display names the budget problem.
        prop_assert!(err.to_string().contains("memory limit"));
    }

    /// A limit loose enough to admit every candidate filters nothing, so
    /// the constrained plan must be byte-identical to the unconstrained
    /// one (same DP, same tie-breaks — checked by fingerprint).
    #[test]
    fn relaxed_limit_reproduces_the_unconstrained_plan(
        layers in 2usize..=10,
        workers in 1usize..=4,
        weight_params in 1_000u64..5_000_000,
        kind in arb_schedule(),
    ) {
        let profile = zoo::uniform(layers, 1e9, 10_000, weight_params);
        let t = topo(workers);
        let free = Planner::new(&profile, &t)
            .with_schedule(kind)
            .try_plan()
            .expect("unconstrained plan");
        let capped = Planner::new(&profile, &t)
            .with_schedule(kind)
            .with_memory_limit(u64::MAX / 2)
            .try_plan()
            .expect("a limit above any footprint filters nothing");
        prop_assert_eq!(
            config_fingerprint(&capped.config),
            config_fingerprint(&free.config),
            "relaxed limit changed the plan: {} vs {}",
            capped.config.label(), free.config.label()
        );
        prop_assert_eq!(capped.bottleneck_s, free.bottleneck_s);
    }

    /// The memory model's schedule laws, on every enumerable config:
    /// 2BW caps the weight term (never above vanilla), recomputation
    /// leaves the weight term alone, and the combined schedule is never
    /// above plain recompute on either term.
    #[test]
    fn schedule_memory_model_laws(
        layers in 2usize..=8,
        workers in 2usize..=4,
        weight_params in 1_000u64..1_000_000,
        act_elems in 100u64..100_000,
    ) {
        let profile = zoo::uniform(layers, 1e9, act_elems, weight_params);
        let t = topo(workers);
        let planner = Planner::with_options(&profile, &t, 16, Precision::Fp32);
        for config in planner.enumerate_configs() {
            let van = memory_footprint_for(planner.costs(), &config, ScheduleKind::Vanilla1F1B);
            let two = memory_footprint_for(planner.costs(), &config, ScheduleKind::TwoBW);
            let rec = memory_footprint_for(planner.costs(), &config, ScheduleKind::Recompute);
            let both =
                memory_footprint_for(planner.costs(), &config, ScheduleKind::TwoBWRecompute);
            for s in 0..van.len() {
                prop_assert!(two[s].weight_bytes <= van[s].weight_bytes);
                prop_assert_eq!(two[s].activation_bytes, van[s].activation_bytes);
                prop_assert_eq!(rec[s].weight_bytes, van[s].weight_bytes);
                prop_assert!(both[s].weight_bytes <= rec[s].weight_bytes);
                prop_assert_eq!(both[s].activation_bytes, rec[s].activation_bytes);
                prop_assert!(both[s].total() <= rec[s].total());
            }
        }
    }

    /// `config_fits_memory` agrees with the footprint it is defined over.
    #[test]
    fn fits_predicate_matches_footprint(
        layers in 2usize..=8,
        workers in 2usize..=4,
        limit_mb in 1u64..2_000,
        kind in arb_schedule(),
    ) {
        let profile = zoo::uniform(layers, 1e9, 10_000, 500_000);
        let t = topo(workers);
        let limit = limit_mb * (1 << 20);
        let planner = Planner::new(&profile, &t).with_schedule(kind);
        for config in planner.enumerate_configs() {
            let peak = memory_footprint_for(planner.costs(), &config, kind)
                .iter()
                .map(|s| s.total())
                .max()
                .unwrap_or(0);
            prop_assert_eq!(
                planner.config_fits_memory(&config, limit),
                peak <= limit,
                "predicate disagrees with footprint on {} (peak {peak}, limit {limit})",
                config.label()
            );
        }
    }
}
