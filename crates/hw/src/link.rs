//! Link and collective-communication time models.
//!
//! Point-to-point transfers follow the classic latency + bandwidth model.
//! `all_reduce` follows the paper's cost model (§3.1): with `m` participants
//! each worker sends and receives `(m-1)/m · bytes`, which matches a
//! bandwidth-optimal ring all_reduce.

use serde::{Deserialize, Serialize};

/// A bidirectional link characterised by bandwidth and per-message latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message latency in seconds (propagation + software overhead).
    pub latency_sec: f64,
    /// Whether the medium is *shared* among all endpoints (a PCIe tree,
    /// where every GPU's traffic funnels through one root complex) rather
    /// than point-to-point (NVLink, switched Ethernet). On a shared medium
    /// the ring all_reduce loses its `m`-way parallelism: every step all
    /// participants contend for the same root link.
    pub shared: bool,
}

impl LinkModel {
    /// Build a point-to-point link model; panics on non-positive bandwidth.
    pub fn new(bandwidth_bytes_per_sec: f64, latency_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        assert!(latency_sec >= 0.0, "latency must be non-negative");
        LinkModel {
            bandwidth_bytes_per_sec,
            latency_sec,
            shared: false,
        }
    }

    /// Mark the link as a shared medium (see [`LinkModel::shared`]).
    pub fn shared_medium(mut self) -> Self {
        self.shared = true;
        self
    }

    /// Convenience constructor from a bandwidth quoted in Gbit/s (how
    /// Ethernet links are specified in Table 2).
    pub fn from_gbps(gbps: f64, latency_sec: f64) -> Self {
        LinkModel::new(gbps * 1e9 / 8.0, latency_sec)
    }

    /// Convenience constructor from a bandwidth quoted in GByte/s (how
    /// NVLink/PCIe are specified in §2.3).
    pub fn from_gbytes(gbytes: f64, latency_sec: f64) -> Self {
        LinkModel::new(gbytes * 1e9, latency_sec)
    }

    /// Time to move `bytes` point-to-point over this link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

/// Point-to-point transfer time of `bytes` over `link`.
pub fn p2p_time(link: &LinkModel, bytes: u64) -> f64 {
    link.transfer_time(bytes)
}

/// Time for an all_reduce of `bytes` across `m` workers whose slowest
/// common link is `link` (ring algorithm; the paper's §3.1 cost model).
///
/// Each worker sends `(m-1)/m · bytes` and receives the same amount over
/// `2(m-1)` ring steps, so the wall time on point-to-point links is
/// `2(m-1)/m · bytes / B + 2(m-1) · latency`. On a **shared** medium the
/// per-step transfers serialize through the common root, costing `m×` more:
/// `2(m-1) · bytes / B` — which is why data parallelism scales poorly on
/// shared-PCIe servers (Figure 1a/1b).
pub fn allreduce_time(link: &LinkModel, bytes: u64, m: usize) -> f64 {
    assert!(m >= 1, "all_reduce needs at least one participant");
    if m == 1 {
        return 0.0;
    }
    let steps = 2 * (m - 1);
    let mut wire_bytes = 2.0 * (m as f64 - 1.0) / m as f64 * bytes as f64;
    if link.shared {
        wire_bytes *= m as f64;
    }
    wire_bytes / link.bandwidth_bytes_per_sec + steps as f64 * link.latency_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        let l = LinkModel::from_gbps(10.0, 0.0);
        assert!((l.bandwidth_bytes_per_sec - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = LinkModel::new(1e9, 1e-3);
        let t = l.transfer_time(1_000_000);
        assert!((t - (1e-3 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn allreduce_single_worker_is_free() {
        let l = LinkModel::new(1e9, 1e-6);
        assert_eq!(allreduce_time(&l, 1 << 30, 1), 0.0);
    }

    #[test]
    fn allreduce_grows_with_participants() {
        let l = LinkModel::new(1e9, 0.0);
        let t2 = allreduce_time(&l, 1 << 20, 2);
        let t8 = allreduce_time(&l, 1 << 20, 8);
        // (m-1)/m factor: 0.5 for m=2 vs 0.875 for m=8.
        assert!(t8 > t2);
        assert!((t8 / t2 - 0.875 / 0.5).abs() < 1e-9);
    }

    #[test]
    fn allreduce_approaches_2x_bytes_over_bandwidth() {
        let l = LinkModel::new(1e9, 0.0);
        let bytes = 1u64 << 30;
        let t = allreduce_time(&l, bytes, 1000);
        let bound = 2.0 * bytes as f64 / 1e9;
        assert!(t < bound && t > 0.99 * bound);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        LinkModel::new(0.0, 0.0);
    }
}
