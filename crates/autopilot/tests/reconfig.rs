//! End-to-end reconfiguration tests: checkpointed repartition
//! correctness, loss-trajectory identity across a drain → repartition →
//! resume cycle, and probation rollback on a forced bad plan.

use pipedream_autopilot::{repartition_checkpoint, train_with_autopilot, AutopilotOpts};
use pipedream_core::PipelineConfig;
use pipedream_ft::{resume_training, DelayStraggler};
use pipedream_hw::{Device, LinkModel, Precision, Topology};
use pipedream_model::profile_sequential;
use pipedream_obs::DriftConfig;
use pipedream_runtime::checkpoint::CheckpointPoint;
use pipedream_runtime::control::RunControl;
use pipedream_runtime::report::ReconfigVerdict;
use pipedream_runtime::trainer::{try_train_pipeline, TrainOpts};
use pipedream_runtime::{LrSchedule, OptimKind, Semantics};
use pipedream_tensor::data::blobs;
use pipedream_tensor::init::rng;
use pipedream_tensor::layers::{Linear, Tanh};
use pipedream_tensor::{Layer, Sequential, Tensor};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const BATCH: usize = 16;

/// 6-layer MLP: Linear/Tanh/Linear/Tanh/Linear/Linear — enough layers
/// for several distinct partitions.
fn model(seed: u64) -> Sequential {
    let mut r = rng(seed);
    let mut m = Sequential::new("reconfig-mlp").push(Linear::new(8, 32, &mut r));
    m.push_boxed(Box::new(Tanh::new()));
    m.push_boxed(Box::new(Linear::new(32, 32, &mut r)));
    m.push_boxed(Box::new(Tanh::new()));
    m.push_boxed(Box::new(Linear::new(32, 32, &mut r)));
    m.push_boxed(Box::new(Linear::new(32, 4, &mut r)));
    m
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pd-autopilot-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Deterministic single-minibatch-in-flight options: depth 1 means no
/// weight staleness, and momentum 0 means checkpoints (weights only)
/// capture the *entire* training state.
fn deterministic_opts() -> TrainOpts {
    TrainOpts {
        epochs: 2,
        batch: BATCH,
        optim: OptimKind::Sgd {
            lr: 0.05,
            momentum: 0.0,
        },
        semantics: Semantics::Stashed,
        lr_schedule: LrSchedule::Constant,
        depth: Some(1),
        ..TrainOpts::default()
    }
}

#[test]
fn repartition_preserves_every_weight() {
    let dir = tmpdir("resplit");
    let gen0 = dir.join("gen0");
    std::fs::create_dir_all(&gen0).unwrap();
    let full = model(3);
    let reference = full.snapshot();
    let n = full.len();

    // Checkpoint under a 2-stage split at a mid-epoch point. Note the
    // two boundary conventions: `straight(n, &[3])` ends stage 0 *after*
    // layer 3, so the matching `split_off` boundary (first layer of the
    // next stage) is 4.
    let old = PipelineConfig::straight(n, &[3]);
    let point = CheckpointPoint::MidEpoch { epoch: 1, mb: 5 };
    let stages = model(3).split_off(&[4]);
    for (si, sm) in stages.iter().enumerate() {
        pipedream_runtime::checkpoint::save_stage_at(&gen0, si, 1, 5, &sm.snapshot()).unwrap();
    }

    // Re-split into 3 stages; the reassembled parameter vector must be
    // bit-identical.
    let new = PipelineConfig::straight(n, &[2, 4]);
    let gen1 = dir.join("gen1");
    repartition_checkpoint(&gen0, &old, &gen1, &new, model(99), point).unwrap();

    let mut parts = model(99).split_off(&[3, 5]); // template values are fully overwritten
    for (si, sm) in parts.iter_mut().enumerate() {
        let params = pipedream_runtime::checkpoint::load_stage_point(&gen1, si, point).unwrap();
        sm.restore(&params);
    }
    let mut rebuilt = Sequential::new("rebuilt");
    for sm in parts {
        for l in sm.into_layers() {
            rebuilt.push_boxed(l);
        }
    }
    let roundtripped = rebuilt.snapshot();
    assert_eq!(reference.len(), roundtripped.len());
    for (a, b) in reference.iter().zip(&roundtripped) {
        assert_eq!(a.data(), b.data(), "weights changed across repartition");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The drain/repartition/resume cycle must be invisible to convergence:
/// a run drained at an arbitrary minibatch, repartitioned onto different
/// stage boundaries, and resumed from the checkpoint must produce the
/// *same per-minibatch loss trajectory* as an uninterrupted run.
#[test]
fn repartitioned_resume_matches_uninterrupted_loss_trajectory() {
    let data = blobs(256, 8, 4, 0.7, 7); // 16 minibatches/epoch at BATCH
    let n = model(3).len();
    let old = PipelineConfig::straight(n, &[3]);
    let new = PipelineConfig::straight(n, &[2, 4]);

    // Reference: the same model trained straight through.
    let (_, base) = try_train_pipeline(model(3), &old, &data, &deterministic_opts(), None)
        .expect("uninterrupted run");
    assert_eq!(base.per_minibatch.len(), 32);

    // Drained run: cut at minibatch 13 (mid-epoch), checkpoint, re-split
    // to a 3-stage plan, resume to the end.
    let dir = tmpdir("loss-id");
    let gen0 = dir.join("gen0");
    let gate = Arc::new(RunControl::new());
    gate.drain_at(13);
    let mut opts1 = deterministic_opts();
    opts1.checkpoint_dir = Some(gen0.clone());
    opts1.control = Some(gate.clone());
    let (_, seg1) = try_train_pipeline(model(3), &old, &data, &opts1, None).expect("drained run");
    let point = seg1.drained_at.expect("run was cut short");
    assert_eq!(point, CheckpointPoint::MidEpoch { epoch: 0, mb: 12 });
    assert_eq!(seg1.per_minibatch.len(), 13);

    let gen1 = dir.join("gen1");
    repartition_checkpoint(&gen0, &old, &gen1, &new, model(3), point).unwrap();

    let mut opts2 = deterministic_opts();
    opts2.checkpoint_dir = Some(gen1.clone());
    let (_, seg2, resumed_from) =
        resume_training(&model(3), &new, &data, &opts2, None).expect("resumed run");
    assert_eq!(resumed_from, Some(point));

    // Stitch and compare: identical ids, bit-identical losses.
    let cut = point.global_mb(16);
    assert_eq!(cut, 13);
    let mut stitched: Vec<(u64, f32)> = seg1.per_minibatch.clone();
    stitched.extend(seg2.per_minibatch.iter().map(|(id, l)| (id + cut, *l)));
    assert_eq!(stitched.len(), base.per_minibatch.len());
    for (got, want) in stitched.iter().zip(&base.per_minibatch) {
        assert_eq!(got.0, want.0, "minibatch ids diverged");
        assert_eq!(
            got.1, want.1,
            "loss diverged at minibatch {} across drain/repartition/resume",
            got.0
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Probation must catch a bad plan: force the autopilot to "repartition"
/// onto the *same* straggler-afflicted plan with an unmeetable margin —
/// the measured throughput cannot clear it, so the run must roll back to
/// the incumbent plan and still finish training.
#[test]
fn forced_bad_plan_rolls_back_and_training_completes() {
    let topo = Topology::flat(Device::v100(), 2, LinkModel::new(1e14, 0.0), "test");
    let mut prof = model(3);
    let profile = profile_sequential(&mut prof, &Tensor::zeros(&[BATCH, 8]), 1, 3, &topo.device);
    let costs = profile.costs(&topo.device, BATCH, Precision::Fp32);
    let n = profile.num_layers();
    let config = PipelineConfig::straight(n, &[3]);

    let data = blobs(512, 8, 4, 0.7, 7); // 32 minibatches/epoch
    let mut opts = deterministic_opts();
    opts.epochs = 2;
    let dir = tmpdir("rollback");
    opts.checkpoint_dir = Some(dir.clone());

    let auto = AutopilotOpts {
        drift: DriftConfig {
            min_minibatches: 1,
            ..DriftConfig::default()
        },
        sample_every: Duration::from_millis(25),
        probation_windows: 2,
        // No plan can beat the degraded baseline 100×: probation must fail.
        probation_margin: 99.0,
        force_plan: Some(config.clone()),
        ..AutopilotOpts::default()
    };
    // 3 ms per forward send from stage 0: an unambiguous straggler that
    // also paces the run slowly enough for the monitor to see it.
    let hook = Arc::new(DelayStraggler::new(0, Duration::from_millis(3)));
    let (_, report) = train_with_autopilot(
        &model(3),
        &config,
        &data,
        &opts,
        &costs,
        &topo,
        &auto,
        Some(hook.clone()),
    )
    .expect("autopilot run");

    assert!(hook.times_fired() > 0, "straggler never fired");
    assert_eq!(report.reconfig.len(), 1, "expected one reconfig attempt");
    let rec = &report.reconfig[0];
    assert_eq!(rec.verdict, ReconfigVerdict::RolledBack, "{rec:?}");
    assert_eq!(rec.old_plan_fingerprint, rec.new_plan_fingerprint);
    assert!(rec.throughput_before > 0.0);

    // The run still finished: every minibatch of every epoch has a loss,
    // exactly once, in order.
    let ids: Vec<u64> = report.per_minibatch.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, (0..64).collect::<Vec<u64>>());
    assert_eq!(report.per_epoch.last().map(|e| e.epoch), Some(1));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The commit path: force a plan that genuinely fixes the degradation (a
/// single stage — no inter-stage sends, so a forward-send straggler
/// physically cannot fire) and probation must commit it.
#[test]
fn forced_good_plan_commits() {
    let topo = Topology::flat(Device::v100(), 2, LinkModel::new(1e14, 0.0), "test");
    let mut prof = model(3);
    let profile = profile_sequential(&mut prof, &Tensor::zeros(&[BATCH, 8]), 1, 3, &topo.device);
    let costs = profile.costs(&topo.device, BATCH, Precision::Fp32);
    let n = profile.num_layers();
    let config = PipelineConfig::straight(n, &[3]);
    let single_stage = PipelineConfig::straight(n, &[]);

    let data = blobs(512, 8, 4, 0.7, 7);
    let mut opts = deterministic_opts();
    opts.epochs = 2;
    let dir = tmpdir("commit");
    opts.checkpoint_dir = Some(dir.clone());

    let auto = AutopilotOpts {
        drift: DriftConfig {
            min_minibatches: 1,
            ..DriftConfig::default()
        },
        sample_every: Duration::from_millis(25),
        probation_windows: 2,
        probation_margin: 0.05,
        force_plan: Some(single_stage.clone()),
        ..AutopilotOpts::default()
    };
    let hook = Arc::new(DelayStraggler::new(0, Duration::from_millis(3)));
    let (_, report) = train_with_autopilot(
        &model(3),
        &config,
        &data,
        &opts,
        &costs,
        &topo,
        &auto,
        Some(hook),
    )
    .expect("autopilot run");

    assert_eq!(report.reconfig.len(), 1, "expected one reconfig attempt");
    let rec = &report.reconfig[0];
    assert_eq!(rec.verdict, ReconfigVerdict::Committed, "{rec:?}");
    assert!(
        rec.throughput_after > rec.throughput_before,
        "committed plan did not improve throughput: {rec:?}"
    );
    assert_eq!(rec.minibatches_redone, 0, "a clean drain redoes nothing");
    let ids: Vec<u64> = report.per_minibatch.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, (0..64).collect::<Vec<u64>>());
    let _ = std::fs::remove_dir_all(&dir);
}
